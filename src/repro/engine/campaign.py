"""Campaign specs: declarative design-space sweep grids.

A :class:`Campaign` names a grid of sweep points::

    (workload  x  scale  x  named MachineConfig variant)

Machine variants come from **parameter axes**: dotted config paths
(``optimizer.vf_delay``, ``sched_entries``, ``l2.latency``) paired
with value lists.  :func:`expand_axes` takes the cartesian product and
labels each variant ``"a=1,b=2"``; :func:`parse_axis` parses the CLI's
``--axis path=v1,v2,...`` syntax.

The grid order is deterministic (workload-major, then scale, then
variant) so serial and parallel executions enumerate — and report —
identical point lists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from ..uarch.config import MachineConfig, default_config
from ..workloads import ALL_WORKLOADS, get_workload, suite_workloads


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a workload at a scale on a machine variant."""

    workload: str
    scale: int
    variant: str
    config: MachineConfig

    @property
    def label(self) -> str:
        return f"{self.workload}@{self.scale}/{self.variant}"


def split_workloads(text: str) -> list[str]:
    """Split a workload-list string on commas — or semicolons.

    Parameterized synth names contain commas
    (``synth:mixed@seed=0,mem=40``), so a list holding one may use
    ``;`` as the separator instead; with any semicolon present, commas
    are treated as part of the names.  A trailing separator marks a
    single parameterized name:
    ``'synth:mixed@seed=0,mem=40;'``.  Used by the CLI's
    ``--workloads`` options and the service's job specs.
    """
    separator = ";" if ";" in text else ","
    return [part for part in (p.strip() for p in text.split(separator))
            if part]


def apply_override(config, path: str, value):
    """Replace one field addressed by a dotted path on a frozen config.

    ``apply_override(cfg, "optimizer.vf_delay", 5)`` returns a new
    :class:`MachineConfig` with only that leaf changed.
    """
    head, _, rest = path.partition(".")
    if not hasattr(config, head):
        raise AttributeError(
            f"{type(config).__name__} has no field {head!r}")
    if rest:
        child = apply_override(getattr(config, head), rest, value)
        return replace(config, **{head: child})
    current = getattr(config, head)
    if current is not None and not _value_compatible(current, value):
        raise TypeError(f"{path}: expected {type(current).__name__}, "
                        f"got {type(value).__name__} ({value!r})")
    return replace(config, **{head: value})


def _value_compatible(current, value) -> bool:
    """Whether *value* may replace *current* on a config field.

    ``bool`` is checked before ``int``: ``isinstance(True, int)`` holds
    in Python, so a plain isinstance test would silently accept
    ``True`` for an int field (and ``1`` for a bool field) — both are
    almost certainly typos in an axis spec, and both would change the
    config's canonical JSON identity.
    """
    if isinstance(current, bool) or isinstance(value, bool):
        return isinstance(current, bool) and isinstance(value, bool)
    if isinstance(current, int) and isinstance(value, int):
        return True
    return isinstance(value, type(current))


def _parse_value(text: str):
    """Parse one axis value: bool, int, or float (in that order)."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"cannot parse axis value {text!r} "
                         f"(expected bool/int/float)") from None


def parse_axis(spec: str) -> tuple[str, list]:
    """Parse the CLI's ``path=v1,v2,...`` axis syntax."""
    path, sep, values = spec.partition("=")
    if not sep or not path or not values:
        raise ValueError(f"bad axis {spec!r}; expected 'path=v1,v2,...'")
    return path.strip(), [_parse_value(v) for v in values.split(",")]


def expand_axes(base: MachineConfig,
                axes: list[tuple[str, list]]) -> list[tuple[str, MachineConfig]]:
    """Cartesian product of parameter axes applied to a base config.

    Returns ``(label, config)`` pairs; with no axes, the base config
    alone (labelled ``"base"``).
    """
    if not axes:
        return [("base", base)]
    variants = []
    paths = [path for path, _ in axes]
    for combo in itertools.product(*(values for _, values in axes)):
        config = base
        for path, value in zip(paths, combo):
            config = apply_override(config, path, value)
        label = ",".join(f"{p}={v}" for p, v in zip(paths, combo))
        variants.append((label, config))
    return variants


@dataclass(frozen=True)
class Campaign:
    """A named sweep: workloads x scales x machine variants."""

    name: str
    workloads: tuple[str, ...]
    scales: tuple[int, ...]
    variants: tuple[tuple[str, MachineConfig], ...]

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign has no workloads")
        if not self.scales:
            raise ValueError("campaign has no scales")
        if not self.variants:
            raise ValueError("campaign has no machine variants")
        labels = [label for label, _ in self.variants]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate variant labels in {labels}")

    @property
    def size(self) -> int:
        return len(self.workloads) * len(self.scales) * len(self.variants)

    def points(self) -> list[SweepPoint]:
        """The full grid in deterministic workload-major order."""
        return [SweepPoint(workload=w, scale=s, variant=label,
                           config=config)
                for w in self.workloads
                for s in self.scales
                for label, config in self.variants]

    @classmethod
    def from_axes(cls, name: str = "sweep",
                  workloads: list[str] | None = None,
                  suite: str | None = None,
                  scales: list[int] | None = None,
                  base: MachineConfig | None = None,
                  axes: list[tuple[str, list]] | None = None,
                  include_baseline: bool = False) -> "Campaign":
        """Build a campaign from CLI-shaped inputs.

        ``workloads`` accepts full names or paper abbreviations;
        ``suite`` selects a whole suite instead; neither selects all
        22 kernels.  ``include_baseline`` prepends the optimizer-off
        base config as a ``baseline`` variant (for speedup grids).
        """
        if workloads:
            names = tuple(get_workload(n).name for n in workloads)
        elif suite:
            names = tuple(w.name for w in suite_workloads(suite))
        else:
            names = tuple(w.name for w in ALL_WORKLOADS)
        base = base if base is not None else default_config()
        variants = expand_axes(base, axes or [])
        if variants == [("base", base)] and base.optimizer.enabled:
            variants = [("optimized", base)]
        if include_baseline:
            baseline = base.without_optimizer()
            # drop only the *implicit* no-axes variant when it equals
            # the baseline; explicitly requested axis variants are kept
            # even if their config coincides with it
            if not axes and variants[0][1] == baseline:
                variants = []
            variants = [("baseline", baseline)] + variants
        return cls(name=name, workloads=names,
                   scales=tuple(scales or [1]),
                   variants=tuple(variants))
