"""Cycle-level out-of-order superscalar timing model.

Trace-driven replay of the oracle instruction stream through the
paper's machine (Table 2): fetch → decode → rename(/optimize) →
schedule → register read → execute → retire.

Modeling notes (all standard for SimpleScalar-era studies, and
documented in DESIGN.md):

* **Wrong-path fetch** is charged as a front-end bubble: when a
  mispredicted control instruction is fetched, fetch stops until the
  branch resolves, then pays a redirect and refills the front end.
  The minimum resolution loop of the baseline machine is 20 cycles.
* **Bypass** is modeled by separating *wakeup* (dependents may issue
  ``exec_latency`` cycles after the producer issues) from
  *completion* (architectural effects: branch redirects, value
  feedback, retirement eligibility — ``regread_stages`` later).
* **Memory disambiguation** is oracle-based: true addresses identify
  the youngest in-flight older store that overlaps each load.  An
  exact-match store forwards its data; partial overlaps force the load
  to wait for the store and access the cache.
* **Stores** complete at address generation + 1 (write-buffer
  semantics); their cache-line touch happens at issue so later loads
  see warm lines.

The pipeline consumes **any iterable** of trace entries — a fully
materialized list or the emulator's lazy :meth:`iter_trace` stream —
pulling entries only as fetch bandwidth allows, so a trace never has
to exist in memory all at once.  When the stream ends the machine
performs a deterministic drain: fetch stops, every in-flight
instruction retires, and the final cycle count includes the drain.
Per-segment runs of a split trace therefore produce exact instruction
and event counters (each entry is fetched/issued/retired exactly once
across segments) while cycle counts carry one pipeline-fill + drain
overhead per segment (see ``PipelineStats.merge``).
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Iterable

from ..functional.emulator import ArchState, TraceEntry
from ..isa.opcodes import OpClass, Opcode
from .branch_predictor import FrontEndPredictor
from .caches import MemoryHierarchy
from .config import MachineConfig
from .dyninstr import DynInstr
from .regfile import OutOfRegisters, PhysRegFile
from .rename import BaselineRenamer, Renamer
from .scheduler import SchedulerBank
from .stats import PipelineStats

_BLOCK_SHIFT = 3  # 8-byte blocks for memory-dependence tracking

_EV_WAKEUP = 0
_EV_COMPLETE = 1


class SimulationDeadlock(Exception):
    """Raised when the pipeline stops making forward progress."""


class Pipeline:
    """One simulated machine executing one dynamic trace."""

    def __init__(self, trace: Iterable[TraceEntry], config: MachineConfig,
                 renamer: Renamer | None = None,
                 prf: PhysRegFile | None = None,
                 arch_state: ArchState | None = None):
        self._trace_iter = iter(trace)
        # One-entry lookahead: fetch peeks at the next entry's PC for
        # block-boundary decisions before committing to consume it.
        self._pending: TraceEntry | None = next(self._trace_iter, None)
        self.config = config
        self.prf = prf if prf is not None else PhysRegFile(config.num_pregs)
        if renamer is None:
            renamer = BaselineRenamer(self.prf)
        self.renamer = renamer
        self.hierarchy = MemoryHierarchy(config.il1, config.dl1, config.l2,
                                         config.memory_latency)
        self.predictor = FrontEndPredictor(config.gshare_bits,
                                           config.btb_entries,
                                           config.ras_entries)
        self.sched = SchedulerBank(config.sched_entries,
                                   config.n_simple_ialu,
                                   config.n_complex_ialu, config.n_fpalu,
                                   config.n_agen)
        self.stats = PipelineStats()
        self.now = 0
        # front end
        self._frontend: deque[tuple[int, DynInstr]] = deque()
        self._frontend_cap = config.frontend_depth * config.fetch_width
        self._fetch_blocked_by: DynInstr | None = None
        self._fetch_resume_cycle = 0
        self._current_fetch_line = -1
        # rename / dispatch
        self._dispatch_queue: deque[tuple[int, DynInstr]] = deque()
        self._dispatch_cap = (config.dispatch_stages + 1) * config.rename_width
        self._rob: deque[DynInstr] = deque()
        # execution bookkeeping
        self._events: list[tuple[int, int, int, DynInstr]] = []
        self._waiting_on_preg: dict[int, list[DynInstr]] = {}
        self._waiting_on_store: dict[int, list[DynInstr]] = {}
        self._last_writer: dict[int, DynInstr] = {}
        self._last_retire_cycle = 0
        # Optional retirement-side architectural replay: every retired
        # entry is folded into *arch_state* in retirement order, so the
        # differential harness can compare the state this machine's
        # retirement implies against the emulator's final state.
        self._arch_state = arch_state

    # ==================================================================
    # main loop
    # ==================================================================

    def run(self) -> PipelineStats:
        """Simulate until the trace is exhausted **and** fully drained."""
        stats = self.stats
        while self._pending is not None or stats.retired < stats.fetched:
            self.now += 1
            self._writeback()
            self._issue()
            self._dispatch()
            self._rename()
            self._fetch()
            self._retire()
            if self.now - self._last_retire_cycle > 500_000:
                raise SimulationDeadlock(
                    f"no retirement since cycle {self._last_retire_cycle} "
                    f"(now {self.now}, retired "
                    f"{stats.retired}/{stats.fetched} fetched, "
                    f"rob {len(self._rob)}, "
                    f"head {self._rob[0] if self._rob else None})")
        self.stats.cycles = self.now
        self._finalize_stats()
        return self.stats

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.il1_hits = self.hierarchy.il1.hits
        stats.il1_misses = self.hierarchy.il1.misses
        stats.dl1_hits = self.hierarchy.dl1.hits
        stats.dl1_misses = self.hierarchy.dl1.misses
        stats.l2_hits = self.hierarchy.l2.hits
        stats.l2_misses = self.hierarchy.l2.misses
        stats.cond_branches = self.predictor.cond_branches
        stats.cond_mispredicts = self.predictor.cond_mispredicts
        stats.indirect_jumps = self.predictor.indirect_jumps
        stats.indirect_mispredicts = self.predictor.indirect_mispredicts
        stats.preg_high_water = self.prf.high_water
        stats.preg_alloc_stalls = self.prf.allocation_stalls
        self.renamer.collect_stats(stats)

    # ==================================================================
    # writeback: wakeup + completion events
    # ==================================================================

    def _schedule(self, kind: int, cycle: int, di: DynInstr) -> None:
        heapq.heappush(self._events, (cycle, di.seq, kind, di))

    def _writeback(self) -> None:
        events = self._events
        while events and events[0][0] <= self.now:
            _, _, kind, di = heapq.heappop(events)
            if kind == _EV_WAKEUP:
                self._do_wakeup(di)
            else:
                self._do_complete(di)

    def _do_wakeup(self, di: DynInstr) -> None:
        if di.dst_preg is not None:
            self.prf.mark_ready(di.dst_preg, di.entry.result)
            waiters = self._waiting_on_preg.pop(di.dst_preg, None)
            if waiters:
                for waiter in waiters:
                    waiter.deps_remaining -= 1
        if di.is_store:
            waiters = self._waiting_on_store.pop(di.seq, None)
            if waiters:
                for waiter in waiters:
                    waiter.deps_remaining -= 1

    def _do_complete(self, di: DynInstr) -> None:
        di.completed = True
        di.complete_cycle = self.now
        self.renamer.on_complete(di, self.now)
        if di.is_store:
            self.renamer.on_store_executed(di)
        if di is self._fetch_blocked_by:
            self._fetch_blocked_by = None
            self._fetch_resume_cycle = self.now + self.config.redirect_penalty
            if di.early_resolved:
                self.stats.mispredicts_recovered_early += 1

    # ==================================================================
    # issue / execute
    # ==================================================================

    def _issue(self) -> None:
        for di in self.sched.select_all():
            di.issue_cycle = self.now
            self.stats.issued += 1
            latency = self._execution_latency(di)
            di.exec_latency = latency
            self._schedule(_EV_WAKEUP, self.now + latency, di)
            self._schedule(_EV_COMPLETE,
                           self.now + self.config.regread_stages + latency,
                           di)

    def _execution_latency(self, di: DynInstr) -> int:
        spec = di.instr.spec
        if di.sched_class is not OpClass.MEM:
            if di.removed_load:
                return 1  # load converted to a register move
            return spec.latency
        agen = 0 if di.addr_known else 1
        if di.is_store:
            # Write-buffer semantics: touch the line, complete quickly.
            self.hierarchy.dwrite(di.entry.addr)
            self.stats.dcache_accesses += 1
            return agen + 1
        store_dep = di.store_dep
        if (store_dep is not None and not store_dep.retired
                and store_dep.entry.addr == di.entry.addr
                and store_dep.instr.spec.mem_size
                == di.instr.spec.mem_size):
            self.stats.store_forwards_lsq += 1
            return agen + 1
        self.stats.dcache_accesses += 1
        return agen + self.hierarchy.dread(di.entry.addr)

    # ==================================================================
    # dispatch: rename exit -> scheduler entry
    # ==================================================================

    def _dispatch(self) -> None:
        moved = 0
        queue = self._dispatch_queue
        while queue and moved < self.config.rename_width:
            enter_cycle, di = queue[0]
            if enter_cycle > self.now:
                break
            target = self.sched.queue_for(di)
            if not target.has_space:
                target.full_stalls += 1
                break
            queue.popleft()
            self._setup_deps(di)
            target.insert(di)
            moved += 1

    def _setup_deps(self, di: DynInstr) -> None:
        deps = 0
        for preg in set(di.src_pregs):
            if not self.prf.is_ready(preg):
                deps += 1
                self._waiting_on_preg.setdefault(preg, []).append(di)
        store_dep = di.store_dep
        if store_dep is not None and store_dep.issue_cycle < 0:
            # Store hasn't produced its data/address yet.
            deps += 1
            self._waiting_on_store.setdefault(store_dep.seq, []).append(di)
        elif store_dep is not None and not store_dep.completed:
            # Store issued; its wakeup may still be in flight.
            wakeup = store_dep.issue_cycle + store_dep.exec_latency
            if wakeup > self.now:
                deps += 1
                self._waiting_on_store.setdefault(store_dep.seq,
                                                  []).append(di)
        di.deps_remaining = deps

    # ==================================================================
    # rename (+ optimize)
    # ==================================================================

    def _rename(self) -> None:
        config = self.config
        renamed = 0
        began_bundle = False
        while (renamed < config.rename_width and self._frontend
               and self._frontend[0][0] <= self.now):
            if len(self._rob) >= config.rob_size:
                self.stats.rename_stall_rob += 1
                break
            if len(self._dispatch_queue) >= self._dispatch_cap:
                self.stats.rename_stall_dispatch += 1
                break
            _, di = self._frontend[0]
            if not began_bundle:
                self.renamer.begin_bundle(self.now)
                began_bundle = True
            try:
                self.renamer.rename(di, self.now)
            except OutOfRegisters:
                if self.renamer.relieve_pressure():
                    continue  # retry this instruction
                self.stats.rename_stall_pregs += 1
                break
            self._frontend.popleft()
            renamed += 1
            self._rob.append(di)
            self._post_rename(di)

    def _post_rename(self, di: DynInstr) -> None:
        """Classify the renamed instruction and route it onward."""
        config = self.config
        stats = self.stats
        rename_done = self.now + config.effective_rename_stages
        entry = di.entry
        if di.misspec_flush and self._fetch_blocked_by is None:
            # An MBC speculative-staleness recovery: treat it like a
            # mispredict — fetch is squashed until this load resolves.
            self._fetch_blocked_by = di
        if entry.instr.is_mem:
            stats.mem_ops += 1
            if di.addr_known:
                stats.mem_addr_known += 1
            if entry.is_load:
                stats.loads += 1
                if di.removed_load:
                    stats.loads_removed += 1
            self._track_memory_dependence(di)
        if di.early:
            stats.early_executed += 1
            if di.is_control:
                stats.early_branches += 1
            if di.mispredicted:
                di.early_resolved = True
            self._schedule(_EV_WAKEUP, rename_done, di)
            self._schedule(_EV_COMPLETE, rename_done, di)
            return
        if di.opcode is Opcode.NOP:
            self._schedule(_EV_WAKEUP, rename_done, di)
            self._schedule(_EV_COMPLETE, rename_done, di)
            return
        enter = rename_done + config.dispatch_stages
        self._dispatch_queue.append((enter, di))

    def _track_memory_dependence(self, di: DynInstr) -> None:
        entry = di.entry
        size = di.instr.spec.mem_size
        first_block = entry.addr >> _BLOCK_SHIFT
        last_block = (entry.addr + size - 1) >> _BLOCK_SHIFT
        if entry.is_store:
            for block in range(first_block, last_block + 1):
                self._last_writer[block] = di
            return
        # Load: find the youngest older overlapping in-flight store.
        best: DynInstr | None = None
        for block in range(first_block, last_block + 1):
            store = self._last_writer.get(block)
            if store is None or store.retired:
                continue
            s_addr = store.entry.addr
            s_size = store.instr.spec.mem_size
            if s_addr < entry.addr + size and entry.addr < s_addr + s_size:
                if best is None or store.seq > best.seq:
                    best = store
        if best is not None and not di.removed_load:
            di.store_dep = best

    # ==================================================================
    # fetch
    # ==================================================================

    def _fetch(self) -> None:
        config = self.config
        stats = self.stats
        if self._fetch_blocked_by is not None:
            stats.fetch_blocked_cycles += 1
            return
        if self.now < self._fetch_resume_cycle:
            stats.fetch_icache_stall_cycles += 1
            return
        fetched = 0
        block_mask = ~(config.fetch_width * 4 - 1)
        block_start = -1
        while (fetched < config.fetch_width and self._pending is not None
               and len(self._frontend) < self._frontend_cap):
            entry = self._pending
            if block_start < 0:
                block_start = entry.pc & block_mask
            elif entry.pc & block_mask != block_start:
                # Fetch delivers one aligned block per cycle; the next
                # block starts next cycle.
                break
            line = self.hierarchy.il1.line_address(entry.pc)
            if line != self._current_fetch_line:
                latency = self.hierarchy.ifetch(entry.pc)
                self._current_fetch_line = line
                if latency > config.il1.latency:
                    # I-cache miss: this group ends; resume after fill.
                    self._fetch_resume_cycle = self.now + latency
                    break
            self._pending = next(self._trace_iter, None)
            di = DynInstr(entry, fetch_cycle=self.now)
            self._frontend.append((self.now + config.frontend_depth, di))
            stats.fetched += 1
            fetched += 1
            if entry.is_control:
                mispredicted, bubble = self.predictor.predict(
                    entry.instr, bool(entry.taken), entry.next_pc)
                di.mispredicted = mispredicted
                if mispredicted:
                    self._fetch_blocked_by = di
                    self._current_fetch_line = -1
                    break
                if bubble:
                    di.btb_bubble = True
                    stats.btb_bubbles += 1
                    self._fetch_resume_cycle = (
                        self.now + config.btb_miss_penalty)
                    self._current_fetch_line = -1
                    break
                if entry.taken:
                    # Correctly predicted taken: the fetch group ends,
                    # the next group starts at the target next cycle.
                    self._current_fetch_line = -1
                    break

    # ==================================================================
    # retire
    # ==================================================================

    def _retire(self) -> None:
        retired = 0
        rob = self._rob
        while (rob and retired < self.config.retire_width
               and rob[0].completed and rob[0].complete_cycle <= self.now):
            di = rob.popleft()
            di.retired = True
            if self._arch_state is not None:
                self._arch_state.apply(di.entry)
            self.renamer.on_retire(di)
            if di.is_store:
                size = di.instr.spec.mem_size
                first = di.entry.addr >> _BLOCK_SHIFT
                last = (di.entry.addr + size - 1) >> _BLOCK_SHIFT
                for block in range(first, last + 1):
                    if self._last_writer.get(block) is di:
                        del self._last_writer[block]
            retired += 1
            self.stats.retired += 1
        if retired:
            self._last_retire_cycle = self.now


def make_pipeline(trace: Iterable[TraceEntry], config: MachineConfig,
                  arch_state: ArchState | None = None) -> Pipeline:
    """Build a :class:`Pipeline` with the config-appropriate renamer.

    ``arch_state``, if given, receives every retired entry in
    retirement order (see :class:`~repro.functional.emulator.\
ArchState`); the differential harness uses this to audit retirement
    against the architectural oracle.
    """
    prf = PhysRegFile(config.num_pregs)
    if config.optimizer.enabled:
        from ..core.optimizer import OptimizingRenamer
        renamer: Renamer = OptimizingRenamer(prf, config)
    else:
        renamer = BaselineRenamer(prf)
    return Pipeline(trace, config, renamer=renamer, prf=prf,
                    arch_state=arch_state)


#: Lazily bound telemetry registry.  The uarch layer must not import
#: :mod:`repro.engine` at module level (the engine imports *this*
#: module during its package init — a module-level import here would
#: touch a partially initialized package); binding at first simulation
#: keeps the layering one-way at import time.
_TELEMETRY = None


def _telemetry():
    global _TELEMETRY
    if _TELEMETRY is None:
        from ..engine.telemetry import TELEMETRY
        _TELEMETRY = TELEMETRY
    return _TELEMETRY


def simulate_trace(trace: Iterable[TraceEntry],
                   config: MachineConfig) -> PipelineStats:
    """Simulate *trace* on *config*'s machine and return its stats.

    *trace* may be a materialized list or any lazy iterable (e.g. the
    emulator's ``iter_trace()`` stream).  Builds the optimizing
    renamer when ``config.optimizer.enabled``, otherwise the baseline
    renamer.

    Telemetry sits at per-run granularity (one clock read pair around
    the whole simulation — never per cycle), recording wall time,
    retired instruction and cycle totals, and a simulation-throughput
    gauge.
    """
    started_ns = time.perf_counter_ns()
    stats = make_pipeline(trace, config).run()
    telemetry = _telemetry()
    if telemetry.enabled:
        elapsed = (time.perf_counter_ns() - started_ns) / 1e9
        telemetry.counter("repro_sim_runs_total").inc()
        telemetry.counter("repro_sim_retired_insns_total").inc(
            stats.retired)
        telemetry.counter("repro_sim_cycles_total").inc(stats.cycles)
        telemetry.histogram("repro_sim_run_seconds").observe(elapsed)
        if elapsed > 0:
            telemetry.gauge("repro_sim_insns_per_second").set(
                stats.retired / elapsed)
            telemetry.gauge("repro_sim_cycles_per_second").set(
                stats.cycles / elapsed)
    return stats
