"""Unit tests for the reference-counted physical register file."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch import OutOfRegisters, PhysRegFile


class TestAllocation:
    def test_allocate_gives_distinct_registers(self):
        prf = PhysRegFile(8)
        regs = {prf.allocate() for _ in range(8)}
        assert len(regs) == 8

    def test_exhaustion_raises(self):
        prf = PhysRegFile(2)
        prf.allocate()
        prf.allocate()
        with pytest.raises(OutOfRegisters):
            prf.allocate()
        assert prf.allocation_stalls == 1

    def test_initial_refcount_is_one(self):
        prf = PhysRegFile(4)
        preg = prf.allocate()
        assert prf.refcount(preg) == 1
        assert prf.is_live(preg)

    def test_release_to_zero_frees(self):
        prf = PhysRegFile(1)
        preg = prf.allocate()
        prf.release(preg)
        assert not prf.is_live(preg)
        assert prf.allocate() == preg  # recycled

    def test_add_ref_prevents_free(self):
        prf = PhysRegFile(2)
        preg = prf.allocate()
        prf.add_ref(preg)
        prf.release(preg)
        assert prf.is_live(preg)
        prf.release(preg)
        assert not prf.is_live(preg)

    def test_add_ref_on_free_register_rejected(self):
        prf = PhysRegFile(2)
        preg = prf.allocate()
        prf.release(preg)
        with pytest.raises(ValueError):
            prf.add_ref(preg)

    def test_double_release_rejected(self):
        prf = PhysRegFile(2)
        preg = prf.allocate()
        prf.release(preg)
        with pytest.raises(ValueError):
            prf.release(preg)

    def test_num_free_tracks(self):
        prf = PhysRegFile(4)
        assert prf.num_free == 4
        preg = prf.allocate()
        assert prf.num_free == 3
        prf.release(preg)
        assert prf.num_free == 4

    def test_high_water_mark(self):
        prf = PhysRegFile(8)
        regs = [prf.allocate() for _ in range(5)]
        for preg in regs:
            prf.release(preg)
        assert prf.high_water == 5


class TestVersions:
    def test_version_bumps_on_free(self):
        prf = PhysRegFile(1)
        preg = prf.allocate()
        version = prf.version(preg)
        prf.release(preg)
        prf.allocate()
        assert prf.version(preg) == version + 1

    def test_version_stable_while_live(self):
        prf = PhysRegFile(2)
        preg = prf.allocate()
        version = prf.version(preg)
        prf.add_ref(preg)
        prf.release(preg)
        assert prf.version(preg) == version


class TestValues:
    def test_mark_ready_stores_value(self):
        prf = PhysRegFile(2)
        preg = prf.allocate()
        assert not prf.is_ready(preg)
        prf.mark_ready(preg, 42)
        assert prf.is_ready(preg)
        assert prf.value_of(preg) == 42

    def test_free_clears_readiness(self):
        prf = PhysRegFile(1)
        preg = prf.allocate()
        prf.mark_ready(preg, 42)
        prf.release(preg)
        preg2 = prf.allocate()
        assert preg2 == preg
        assert not prf.is_ready(preg2)
        assert prf.value_of(preg2) is None


class TestRefcountInvariant:
    @given(st.lists(st.sampled_from(["alloc", "ref", "release"]),
                    max_size=200))
    def test_never_negative_never_leaks(self, ops):
        prf = PhysRegFile(16)
        live: list[int] = []
        for op in ops:
            if op == "alloc":
                if prf.can_allocate():
                    live.append(prf.allocate())
            elif op == "ref" and live:
                prf.add_ref(live[0])
                live.append(live[0])
            elif op == "release" and live:
                preg = live.pop()
                prf.release(preg)
        # Every live handle corresponds to a live register.
        for preg in live:
            assert prf.is_live(preg)
        # Dropping every handle returns the file to fully free.
        while live:
            prf.release(live.pop())
        assert prf.num_free == 16
