"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.engine.store import ArtifactStore
from repro.experiments import runner
from repro.uarch.config import default_config
from repro.uarch.stats import PipelineStats


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "untoast" in out
        assert "synth:mixed@seed=0" in out
        # 22 paper kernels + the default synth roster
        from repro.workloads.synth import DEFAULT_ROSTER
        assert out.count("\n") == 22 + len(DEFAULT_ROSTER)

    def test_run_command(self, capsys):
        assert main(["run", "untoast"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "baseline" in out

    def test_run_by_abbreviation(self, capsys):
        assert main(["run", "untst"]) == 0
        assert "untoast" in capsys.readouterr().out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "doom3"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_fig9_with_subset(self, capsys):
        assert main(["--per-suite", "1", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "feedback + opt" in out

    def test_fig11_with_subset(self, capsys):
        assert main(["--per-suite", "1", "fig11"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("list", "run", "table1", "table3", "fig6", "fig8",
                        "fig9", "fig10", "fig11", "fig12", "all", "sweep",
                        "search", "autotune", "store"):
            assert command in text


def _populate_store(root) -> ArtifactStore:
    """A store holding one tiny trace and one stats artifact."""
    store = ArtifactStore(root)
    store.save_trace("mcf", 1, [])
    store.save_stats("mcf", 1, default_config(),
                     PipelineStats(cycles=10, retired=5))
    return store


class TestStoreCommands:
    def teardown_method(self):
        runner.clear_caches(detach_store=True)

    def test_store_info_reports_populated_store(self, tmp_path, capsys):
        _populate_store(tmp_path)
        assert main(["--store", str(tmp_path), "store", "info"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["root"] == str(tmp_path)
        assert report["artifacts"]["traces"] == 1
        assert report["artifacts"]["stats"] == 1
        assert report["total_bytes"] > 0

    def test_store_gc_evicts_down_to_cap(self, tmp_path, capsys):
        _populate_store(tmp_path)
        assert main(["--store", str(tmp_path), "store", "gc",
                     "--max-bytes", "0"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scanned"] == 2
        assert report["evicted"] == 2
        assert report["remaining_bytes"] == 0
        assert sum(ArtifactStore(tmp_path).artifact_count().values()) == 0

    def test_store_gc_noop_under_cap(self, tmp_path, capsys):
        _populate_store(tmp_path)
        assert main(["--store", str(tmp_path), "store", "gc",
                     "--max-bytes", str(10 ** 9)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == 0
        assert sum(ArtifactStore(tmp_path).artifact_count().values()) == 2

    def test_store_commands_require_store_option(self):
        for argv in (["store", "info"],
                     ["store", "gc", "--max-bytes", "1"]):
            with pytest.raises(SystemExit, match="--store"):
                main(argv)


class TestSweepErrors:
    def teardown_method(self):
        runner.clear_caches(detach_store=True)

    def test_bad_axis_syntax_exits_nonzero(self, capsys):
        assert main(["sweep", "--workloads", "mcf",
                     "--axis", "no-equals"]) == 2
        err = capsys.readouterr().err
        assert "repro sweep: error:" in err
        assert "no-equals" in err

    def test_unknown_axis_path_exits_nonzero(self, capsys):
        assert main(["sweep", "--workloads", "mcf",
                     "--axis", "optimizer.warp=1,2"]) == 2
        err = capsys.readouterr().err
        assert "repro sweep: error:" in err
        assert "warp" in err

    def test_mistyped_axis_value_exits_nonzero(self, capsys):
        assert main(["sweep", "--workloads", "mcf",
                     "--axis", "sched_entries=true,false"]) == 2
        err = capsys.readouterr().err
        assert "repro sweep: error:" in err
        assert "expected int, got bool" in err

    def test_unknown_workload_exits_nonzero(self, capsys):
        assert main(["sweep", "--workloads", "doom3", "--quiet"]) == 2
        assert "repro sweep: error:" in capsys.readouterr().err
