"""Regenerates Figure 12: value-feedback transmission-delay sweep.

Paper reference: essentially no sensitivity — a register is either
referenced by the optimizer for a long time or not at all.
"""

from conftest import publish, rows_data

from repro.experiments import vf_delay


def test_fig12_value_feedback_delay(benchmark, smoke):
    per_suite = 1 if smoke else 2
    rows = benchmark.pedantic(vf_delay.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": per_suite})
    if not smoke:
        for row in rows:
            values = list(row.bars.values())
            assert max(values) - min(values) < 0.1  # near-flat
    publish("fig12_vf_delay", vf_delay.format(rows), smoke,
            data={"rows": rows_data(rows)})
