"""Unified typed event stream for every engine producer.

Before this module each engine entry point invented its own progress
callback shape — ``run_sweep`` called ``progress(done, total, label)``,
the segmented engine ``progress(done, total, message)``, the search
engine passed raw dicts, and the fuzz harness
``progress(report, done, total)``.  Consumers (the CLI, the streaming
service, tests) had to know which producer they were wired to.

Now every producer emits instances of one small event vocabulary and a
``progress`` callback always has the signature ``progress(event)``:

============== ====================================================
kind           emitted by / meaning
============== ====================================================
``point``      one sweep grid point completed (flat or segmented
               sweeps; search evaluations also stream these, tagged
               with the owning candidate)
``evaluation`` one search candidate fully scored at one budget
``segment``    one segmented-engine unit finished (a planning task
               or a (config x segment) simulation shard)
``finding``    one fuzzed program's differential verdict
``job-*``      lifecycle of a named service job (``job-started``,
               ``job-finished``, ``job-failed``) — emitted only by
               :mod:`repro.engine.service`
``metric``     one named telemetry measurement (a per-job phase span
               such as queue wait or execute time) — emitted by the
               service just before a job's terminal event
``worker-*``   lifecycle of a remote socket worker registered with a
               :class:`~repro.engine.backend.SocketWorkerBackend`
               (``worker-joined``, ``worker-left``)
``unit-leased`` one :class:`~repro.engine.backend.WorkUnit` handed to
               a connected worker
============== ====================================================

Events are frozen dataclasses with a stable JSON form: ``to_dict()``
always carries the ``kind`` discriminator, ``to_json_line()`` frames
one event per line (the service's wire format), and
:func:`event_from_dict` rebuilds the typed event on the client side —
unknown keys are dropped, so old clients survive new fields.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, ClassVar

#: The signature every engine ``progress=`` callback now has.
ProgressCallback = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """Base event: a ``kind`` discriminator plus a stable JSON form."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict:
        payload = {"kind": self.kind}
        payload.update(asdict(self))
        return payload

    def to_json_line(self) -> str:
        """One-line JSON framing (the service's stream format)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class PointEvent(Event):
    """One completed sweep grid point.

    ``candidate`` is empty for plain sweeps; the search engine tags
    each point with the candidate whose evaluation it belongs to and
    uses ``done``/``total`` to count points *within* that evaluation.
    """

    kind: ClassVar[str] = "point"
    label: str
    done: int
    total: int
    from_cache: bool = False
    candidate: str = ""


@dataclass(frozen=True)
class EvaluationEvent(Event):
    """One search candidate fully scored at one instruction budget."""

    kind: ClassVar[str] = "evaluation"
    candidate: str
    score: float
    limit_insns: int | None = None
    from_ledger: bool = False
    sampled: bool = False


@dataclass(frozen=True)
class SegmentEvent(Event):
    """One segmented-engine unit done (planning or simulation).

    ``phase`` is ``"plan"`` while workloads are being segmented and
    ``"simulate"`` while (config x segment) shards run.  ``estimated``
    flags units of a sampled-mode sweep, whose final stats are
    extrapolated rather than fully simulated.
    """

    kind: ClassVar[str] = "segment"
    message: str
    done: int
    total: int
    phase: str = "simulate"
    estimated: bool = False


@dataclass(frozen=True)
class FindingEvent(Event):
    """One fuzzed program's differential verdict."""

    kind: ClassVar[str] = "finding"
    workload: str
    scale: int
    instructions: int
    ok: bool
    done: int
    total: int
    failures: tuple[str, ...] = ()


@dataclass(frozen=True)
class JobStartedEvent(Event):
    """A service job began executing."""

    kind: ClassVar[str] = "job-started"
    job: str
    job_kind: str
    name: str = ""


@dataclass(frozen=True)
class JobFinishedEvent(Event):
    """A service job completed; ``result`` is its JSON-ready summary.

    For sweep/search jobs the summary includes the run's canonical
    ``ledger`` string, so a client can byte-compare a service run
    against a serial CLI run of the same work.
    """

    kind: ClassVar[str] = "job-finished"
    job: str
    result: dict


@dataclass(frozen=True)
class JobFailedEvent(Event):
    """A service job raised (or was cancelled — see ``cancelled``)."""

    kind: ClassVar[str] = "job-failed"
    job: str
    error: str
    cancelled: bool = False


@dataclass(frozen=True)
class MetricEvent(Event):
    """One named telemetry measurement attached to an event stream.

    The service emits these for per-job phase spans (queue wait,
    execute time) right before the job's terminal event; ``labels``
    carries the metric's dimension(s) (e.g. ``{"phase": "queue"}``)
    using the same names the ``/metrics`` endpoint exposes.
    """

    kind: ClassVar[str] = "metric"
    name: str
    value: float
    unit: str = ""
    job: str = ""
    labels: dict = field(default_factory=dict)


@dataclass(frozen=True)
class WorkerJoinedEvent(Event):
    """A remote worker registered with the socket backend.

    ``workers`` is the connected-worker count *after* the join — the
    same number the ``repro_workers_connected`` gauge reports.
    """

    kind: ClassVar[str] = "worker-joined"
    worker: str
    workers: int


@dataclass(frozen=True)
class WorkerLeftEvent(Event):
    """A remote worker disconnected (cleanly or by dropping its link).

    ``requeued`` counts units the worker held a lease on at the time;
    they go back to the front of the queue for another worker.
    """

    kind: ClassVar[str] = "worker-left"
    worker: str
    workers: int
    requeued: int = 0


@dataclass(frozen=True)
class UnitLeasedEvent(Event):
    """One work unit handed to a connected remote worker."""

    kind: ClassVar[str] = "unit-leased"
    worker: str
    unit_kind: str
    backend: str = "workers"


EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (PointEvent, EvaluationEvent, SegmentEvent, FindingEvent,
                JobStartedEvent, JobFinishedEvent, JobFailedEvent,
                MetricEvent, WorkerJoinedEvent, WorkerLeftEvent,
                UnitLeasedEvent)
}


def event_from_dict(payload: dict) -> Event:
    """Rebuild a typed event from its ``to_dict()`` form.

    Unknown keys are ignored (forward compatibility); an unknown
    ``kind`` raises ``ValueError`` so a client cannot silently
    misinterpret a stream from a newer server.
    """
    kind = payload.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    known = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in payload.items() if k in known}
    if "failures" in kwargs and isinstance(kwargs["failures"], list):
        kwargs["failures"] = tuple(kwargs["failures"])
    try:
        return cls(**kwargs)
    except TypeError as error:
        # a known kind missing a required field (renamed upstream, or
        # a stream corrupted at a line boundary that still parses as
        # JSON) is a decoding error, not a programming error
        raise ValueError(f"bad {kind!r} event {payload!r}: "
                         f"{error}") from error


def event_from_json_line(line: str) -> Event:
    """Decode one JSON-lines frame back into a typed event."""
    return event_from_dict(json.loads(line))


def format_event(event: Event) -> str:
    """One human-readable line per event (``repro watch``'s output;
    the CLI's search progress printer uses the evaluation branch)."""
    if event.kind == "point":
        owner = f" [{event.candidate}]" if event.candidate else ""
        cache = " (cached)" if event.from_cache else ""
        return (f"[{event.done}/{event.total}]{owner} "
                f"{event.label}{cache}")
    if event.kind == "evaluation":
        if event.sampled:
            budget = "sampled"
        elif event.limit_insns:
            budget = f"first {event.limit_insns} insns"
        else:
            budget = "full"
        source = "ledger" if event.from_ledger else "ran"
        return (f"[search] {event.candidate}  score {event.score:.4f}  "
                f"({budget}, {source})")
    if event.kind == "segment":
        marker = " ~estimated" if event.estimated else ""
        return f"[{event.done}/{event.total}] {event.message}{marker}"
    if event.kind == "finding":
        verdict = "ok" if event.ok else "FAIL"
        suffix = "".join(f"\n    {failure}" for failure in event.failures)
        return (f"[{event.done}/{event.total}] "
                f"{event.workload}@{event.scale} "
                f"({event.instructions} insns) {verdict}{suffix}")
    if event.kind == "job-started":
        return f"job {event.job} started ({event.job_kind}: {event.name})"
    if event.kind == "job-finished":
        keys = {k: v for k, v in event.result.items() if k != "ledger"}
        return f"job {event.job} finished: {json.dumps(keys)}"
    if event.kind == "job-failed":
        state = "cancelled" if event.cancelled else "failed"
        return f"job {event.job} {state}: {event.error}"
    if event.kind == "metric":
        labels = "".join(f" {k}={v}" for k, v in
                         sorted(event.labels.items()))
        unit = f" {event.unit}" if event.unit else ""
        return f"[metric] {event.name}{labels} = {event.value}{unit}"
    if event.kind == "worker-joined":
        return (f"worker {event.worker} joined "
                f"({event.workers} connected)")
    if event.kind == "worker-left":
        requeued = (f", {event.requeued} unit(s) requeued"
                    if event.requeued else "")
        return (f"worker {event.worker} left "
                f"({event.workers} connected{requeued})")
    if event.kind == "unit-leased":
        return (f"unit {event.unit_kind} leased to {event.worker} "
                f"[{event.backend}]")
    return event.to_json_line()
