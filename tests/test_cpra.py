"""Unit tests for the CP/RA transformation engine.

Every rule of Section 3.1 (plus the minor optimizations of Section
2.1) is pinned here, including the paper's own worked examples.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core import cpra, symbolic
from repro.core.cpra import Kind
from repro.core.symbolic import SymVal
from repro.functional import alu
from repro.isa.opcodes import BranchCond, Opcode

i64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


def const(v):
    return symbolic.const(v)


def plain(p):
    return symbolic.plain(p)


class TestConstantPropagation:
    def test_paper_example_addq(self):
        # "addq r3, 4 -> r4" with r3 known to be 3 moves 7 into r4.
        outcome = cpra.transform(Opcode.ADD, [const(3), const(4)])
        assert outcome.is_early
        assert outcome.value == 7
        assert outcome.sym == const(7)

    @pytest.mark.parametrize("op", [
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.BIC, Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.S4ADD,
        Opcode.S8ADD, Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPULE,
    ])
    def test_all_simple_ops_fold_constants(self, op):
        outcome = cpra.transform(op, [const(12), const(3)])
        assert outcome.is_early
        assert outcome.value == alu.evaluate_int(op, 12, 3)
        assert outcome.uses_alu

    def test_multi_cycle_ops_never_early(self):
        # Division is not a 'simple' (single-cycle) operation, so the
        # rename-stage ALUs cannot execute it even with known inputs.
        outcome = cpra.transform(Opcode.DIV, [const(10), const(2)])
        assert outcome.kind is Kind.PLAIN

    def test_general_multiply_not_early(self):
        outcome = cpra.transform(Opcode.MUL, [const(10), const(3)])
        assert outcome.kind is Kind.PLAIN


class TestReassociation:
    def test_paper_example_sub_chain(self):
        # Section 2.4: SUB r1, 1 -> r1 with r1 = p35 gives p35 - 1;
        # the next SUB gives p35 - 2.
        first = cpra.transform(Opcode.SUB, [plain(35), const(1)])
        assert first.is_rewritten
        assert first.sym == SymVal(base=35, scale=0, offset=-1)
        second = cpra.transform(Opcode.SUB, [first.sym, const(1)])
        assert second.sym == SymVal(base=35, scale=0, offset=-2)

    def test_paper_example_add_chain(self):
        # Section 3.1: add r1,1->r2 with r1 = r0+1 becomes add r0,2->r2.
        r1 = SymVal(base=0, scale=0, offset=1)
        outcome = cpra.transform(Opcode.ADD, [r1, const(1)])
        assert outcome.sym == SymVal(base=0, scale=0, offset=2)

    def test_add_const_left(self):
        outcome = cpra.transform(Opcode.ADD, [const(5), plain(7)])
        assert outcome.is_rewritten
        assert outcome.sym == SymVal(base=7, scale=0, offset=5)

    def test_sub_const_from_sym(self):
        outcome = cpra.transform(Opcode.SUB, [plain(7), const(5)])
        assert outcome.sym == SymVal(base=7, scale=0, offset=-5)

    def test_const_minus_sym_not_representable(self):
        outcome = cpra.transform(Opcode.SUB, [const(5), plain(7)])
        assert outcome.kind is Kind.PLAIN

    def test_sym_plus_sym_not_representable(self):
        outcome = cpra.transform(Opcode.ADD, [plain(1), plain(2)])
        assert outcome.kind is Kind.PLAIN

    def test_scaled_add_promotes_scale(self):
        outcome = cpra.transform(Opcode.S8ADD, [plain(4), const(16)])
        assert outcome.sym == SymVal(base=4, scale=3, offset=16)

    def test_scaled_add_shifts_existing_offset(self):
        base = SymVal(base=4, scale=0, offset=2)
        outcome = cpra.transform(Opcode.S4ADD, [base, const(1)])
        # ((p4 + 2) << 2) + 1 = (p4 << 2) + 9
        assert outcome.sym == SymVal(base=4, scale=2, offset=9)

    def test_scaled_add_const_first(self):
        outcome = cpra.transform(Opcode.S4ADD, [const(3), plain(9)])
        assert outcome.sym == SymVal(base=9, scale=0, offset=12)

    def test_scale_overflow_falls_back(self):
        shifted = SymVal(base=4, scale=2, offset=0)
        outcome = cpra.transform(Opcode.S4ADD, [shifted, const(0)])
        assert outcome.kind is Kind.PLAIN

    def test_shift_left_within_scale(self):
        outcome = cpra.transform(Opcode.SLL, [plain(4), const(3)])
        assert outcome.sym == SymVal(base=4, scale=3, offset=0)

    def test_shift_left_beyond_scale_plain(self):
        outcome = cpra.transform(Opcode.SLL, [plain(4), const(4)])
        assert outcome.kind is Kind.PLAIN

    def test_logic_op_with_symbolic_source_plain(self):
        outcome = cpra.transform(Opcode.AND, [plain(4), const(0xFF)])
        assert outcome.kind is Kind.PLAIN

    @given(i64, i64, i64)
    def test_rewritten_add_preserves_semantics(self, base_value, offset,
                                               addend):
        sym = SymVal(base=1, scale=0, offset=offset)
        outcome = cpra.transform(Opcode.ADD, [sym, const(addend)])
        assert outcome.is_rewritten
        expected = alu.evaluate_int(Opcode.ADD,
                                    sym.evaluate(base_value), addend)
        assert outcome.sym.evaluate(base_value) == expected


class TestMoveCollapsing:
    def test_move_of_const_is_early(self):
        outcome = cpra.transform(Opcode.MOV, [const(9)])
        assert outcome.is_early
        assert outcome.value == 9
        assert not outcome.uses_alu  # no adder needed

    def test_move_copies_symbolic_value(self):
        sym = SymVal(base=5, scale=1, offset=3)
        outcome = cpra.transform(Opcode.MOV, [sym])
        assert outcome.is_rewritten
        assert outcome.sym == sym
        assert not outcome.uses_alu


class TestStrengthReduction:
    def test_multiply_by_power_of_two_becomes_shift(self):
        outcome = cpra.transform(Opcode.MUL, [plain(3), const(8)])
        assert outcome.is_rewritten
        assert outcome.strength_reduced
        assert outcome.sym == SymVal(base=3, scale=3, offset=0)

    def test_multiply_const_by_power_of_two_early(self):
        outcome = cpra.transform(Opcode.MUL, [const(5), const(4)])
        assert outcome.is_early
        assert outcome.value == 20
        assert outcome.strength_reduced

    def test_multiply_commutative(self):
        outcome = cpra.transform(Opcode.MUL, [const(8), plain(3)])
        assert outcome.strength_reduced

    def test_multiply_by_zero(self):
        outcome = cpra.transform(Opcode.MUL, [plain(3), const(0)])
        assert outcome.is_early
        assert outcome.value == 0

    def test_multiply_by_one_collapses_to_move(self):
        outcome = cpra.transform(Opcode.MUL, [plain(3), const(1)])
        assert outcome.is_rewritten
        assert outcome.sym == plain(3)

    def test_multiply_by_large_power_still_single_cycle(self):
        # 2^6 exceeds the scale field but remains a 1-cycle shift.
        outcome = cpra.transform(Opcode.MUL, [plain(3), const(64)])
        assert outcome.kind is Kind.PLAIN
        assert outcome.strength_reduced

    def test_multiply_by_non_power_untouched(self):
        outcome = cpra.transform(Opcode.MUL, [plain(3), const(6)])
        assert outcome.kind is Kind.PLAIN
        assert not outcome.strength_reduced


class TestBranchResolution:
    def test_known_condition_resolves(self):
        assert cpra.resolve_branch(BranchCond.EQ, const(0)) is True
        assert cpra.resolve_branch(BranchCond.EQ, const(1)) is False
        assert cpra.resolve_branch(BranchCond.LT, const(-5)) is True

    def test_unknown_condition_unresolved(self):
        assert cpra.resolve_branch(BranchCond.EQ, plain(3)) is None

    def test_branch_implied_values(self):
        # beq taken => reg is zero; bne not-taken => reg is zero.
        assert cpra.branch_implied_value(Opcode.BEQ, True) == 0
        assert cpra.branch_implied_value(Opcode.BNE, False) == 0
        assert cpra.branch_implied_value(Opcode.BEQ, False) is None
        assert cpra.branch_implied_value(Opcode.BNE, True) is None
        assert cpra.branch_implied_value(Opcode.BLT, True) is None


class TestEarlyValueCorrectness:
    """Early execution must agree with the shared ALU semantics."""

    @given(i64, i64)
    def test_early_results_match_alu(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                   Opcode.XOR, Opcode.CMPLT, Opcode.S4ADD):
            outcome = cpra.transform(op, [const(a), const(b)])
            assert outcome.is_early
            assert outcome.value == alu.evaluate_int(op, a, b)

    @given(i64)
    def test_unary_folds(self, a):
        for op in (Opcode.SEXTB, Opcode.SEXTW, Opcode.SEXTL):
            outcome = cpra.transform(op, [const(a)])
            assert outcome.is_early
            assert outcome.value == alu.evaluate_int(op, a)
