"""Integration tests for the cycle-level pipeline (baseline machine)."""

from repro.functional import run_program
from repro.isa import assemble
from repro.uarch import default_config, simulate_trace
from repro.uarch.pipeline import Pipeline


def trace_of(source: str):
    return run_program(assemble(source)).trace


def simulate(source: str, config=None):
    return simulate_trace(trace_of(source), config or default_config())


class TestBasicProgress:
    def test_retires_every_instruction(self):
        stats = simulate(""".text
        ldi r1, 10
loop:   sub r1, r1, 1
        bne r1, loop
        halt
""")
        assert stats.retired == 21

    def test_cycles_positive_and_bounded(self):
        stats = simulate(".text\nnop\nnop\nnop\nhalt\n")
        assert 0 < stats.cycles < 1000

    def test_ipc_bounded_by_retire_width(self):
        stats = simulate(""".text
        ldi r1, 200
loop:   sub r1, r1, 1
        bne r1, loop
        halt
""")
        assert stats.ipc <= default_config().retire_width

    def test_empty_dependency_chain_parallelism(self):
        # Eight independent ALU ops should overlap heavily compared to
        # eight chained ones.
        independent = simulate(""".text
        ldi r1, 1
        ldi r2, 1
        ldi r3, 1
        ldi r4, 1
        ldi r5, 1
        ldi r6, 1
        ldi r7, 1
        ldi r8, 1
        halt
""")
        chained = simulate(""".text
        ldi r1, 1
        add r1, r1, 1
        add r1, r1, 1
        add r1, r1, 1
        add r1, r1, 1
        add r1, r1, 1
        add r1, r1, 1
        add r1, r1, 1
        halt
""")
        assert independent.cycles <= chained.cycles


class TestBranchTiming:
    def _mispredict_heavy(self):
        # An LCG's bit 4 is hard for gshare early on; more importantly,
        # a RET with a corrupted RAS produces guaranteed mispredicts.
        return """.text
        ldi r1, 60
        ldi r2, 1
loop:   xor r2, r2, 1
        beq r2, odd
        add r3, r3, 1
odd:    sub r1, r1, 1
        bne r1, loop
        halt
"""

    def test_min_branch_penalty_matches_table2(self):
        assert default_config().min_branch_penalty() == 20

    def test_mispredicts_cost_cycles(self):
        base = simulate(self._mispredict_heavy())
        # The same work with no branches in the loop body:
        straight = simulate(""".text
        ldi r1, 60
loop:   xor r2, r2, 1
        add r3, r3, 1
        sub r1, r1, 1
        bne r1, loop
        halt
""")
        # The alternating branch is learned by gshare eventually, but
        # early mispredicts must cost something.
        assert base.cycles >= straight.cycles

    def test_mispredict_counters(self):
        stats = simulate(self._mispredict_heavy())
        assert stats.cond_branches > 0
        assert stats.cond_mispredicts >= 0
        assert stats.total_mispredicts <= stats.cond_branches + \
            stats.indirect_jumps


class TestMemoryTiming:
    def test_cache_miss_slower_than_hit(self):
        # Two loads to the same line: second is a hit.
        stats = simulate(""".data
v:      .quad 1
.text
        ldi r1, v
        ldq r2, 0(r1)
        ldq r3, 0(r1)
        halt
""")
        assert stats.dl1_misses >= 1
        assert stats.dl1_hits >= 1

    def test_store_to_load_forwarding_counted(self):
        stats = simulate(""".data
buf:    .space 8
.text
        ldi r1, buf
        ldi r2, 7
        stq r2, 0(r1)
        ldq r3, 0(r1)
        halt
""")
        assert stats.store_forwards_lsq >= 1

    def test_pointer_chase_serializes(self):
        chase = simulate(""".data
d:      .quad 0
c:      .quad d
b:      .quad c
a:      .quad b
.text
        ldi r1, a
        ldq r1, 0(r1)
        ldq r1, 0(r1)
        ldq r1, 0(r1)
        halt
""")
        parallel = simulate(""".data
a:      .quad 1
b:      .quad 2
c:      .quad 3
d:      .quad 4
.text
        ldi r1, a
        ldq r2, 0(r1)
        ldq r3, 8(r1)
        ldq r4, 16(r1)
        halt
""")
        assert parallel.cycles <= chase.cycles


class TestStructuralLimits:
    def test_scheduler_capacity_respected(self):
        # A long chain of dependent multiplies cannot overflow the
        # 8-entry complex-integer scheduler; the run must complete.
        source = [".text", "        ldi r1, 3"]
        for _ in range(40):
            source.append("        mul r1, r1, r1")
        source.append("        halt")
        stats = simulate("\n".join(source))
        assert stats.retired == 41

    def test_rob_limits_inflight(self):
        # One load miss at the head with hundreds of younger ALU ops:
        # the window must cap and the run must finish.
        lines = [".data", "far:  .quad 1", ".text",
                 "        ldi r1, far", "        ldq r2, 0(r1)"]
        for index in range(300):
            lines.append(f"        add r{3 + index % 20}, r2, {index}")
        lines.append("        halt")
        stats = simulate("\n".join(lines))
        assert stats.retired == 302

    def test_stats_finalized(self):
        stats = simulate(".text\nnop\nhalt\n")
        assert stats.cycles > 0
        assert stats.fetched >= stats.retired


class TestDeterminism:
    def test_same_trace_same_cycles(self):
        source = """.text
        ldi r1, 50
loop:   sub r1, r1, 1
        bne r1, loop
        halt
"""
        trace = trace_of(source)
        first = simulate_trace(trace, default_config())
        second = simulate_trace(trace, default_config())
        assert first.cycles == second.cycles

    def test_machine_variants_differ(self):
        config = default_config()
        trace = trace_of(""".text
        ldi r1, 100
loop:   ldq r2, 0(r30)
        add r3, r3, r2
        sub r1, r1, 1
        bne r1, loop
        halt
""")
        base = simulate_trace(trace, config)
        wide = simulate_trace(trace, config.execution_bound())
        assert wide.cycles <= base.cycles


class TestWatchdog:
    def test_deadlock_detection_exists(self):
        from repro.uarch import SimulationDeadlock
        assert issubclass(SimulationDeadlock, Exception)

    def test_pipeline_object_api(self):
        trace = trace_of(".text\nnop\nhalt\n")
        pipeline = Pipeline(trace, default_config())
        stats = pipeline.run()
        assert stats.retired == 1
