"""Tests for the async streaming results service and its HTTP front end.

The acceptance bar (ISSUE 5): two concurrent jobs — one sweep, one
search — run to completion over one shared store via the service, and
their canonical ledgers are byte-identical to the same work run
serially through the engine (what the CLI does).  That only holds
because sweep state lives in per-sweep ``ExecutionContext`` objects,
so these tests double as the end-to-end regression for the
shared-state clobbering fix.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.cli import main
from repro.engine.campaign import Campaign, parse_axis
from repro.engine.events import (EVENT_TYPES, EvaluationEvent,
                                 FindingEvent, MetricEvent, PointEvent,
                                 event_from_dict, event_from_json_line,
                                 format_event)
from repro.engine.pool import run_sweep
from repro.engine.search import SearchSpace, run_search
from repro.engine.service import (JobManager, ServiceError,
                                  ServiceServer, request_json,
                                  run_service, watch_job)
from repro.uarch.config import default_config

SWEEP_SPEC = {"kind": "sweep", "workloads": ["mcf"],
              "axes": ["optimizer.vf_delay=0,1"], "optimized": True}
SEARCH_SPEC = {"kind": "search", "workloads": ["gcc"],
               "dims": ["optimizer.enabled=false,true"],
               "strategy": "grid"}
#: Enough programs that cancellation/disconnect can land mid-run.
LONG_FUZZ_SPEC = {"kind": "fuzz", "seeds": [0, 40], "small": True,
                  "families": ["ilp"]}


def serial_sweep_ledger(store_dir) -> str:
    """The same work ``SWEEP_SPEC`` names, run serially (CLI path)."""
    campaign = Campaign.from_axes(
        workloads=SWEEP_SPEC["workloads"],
        base=default_config().with_optimizer(),
        axes=[parse_axis(spec) for spec in SWEEP_SPEC["axes"]])
    return run_sweep(campaign.points(), jobs=1,
                     store_dir=store_dir).ledger_json()


def serial_search_ledger(store_dir) -> str:
    """The same work ``SEARCH_SPEC`` names, run serially (CLI path)."""
    return run_search(
        SearchSpace.from_specs(SEARCH_SPEC["dims"]),
        workloads=("gcc",), strategy="grid", jobs=1,
        store_dir=store_dir).ledger_json()


# ----------------------------------------------------------------------
# event vocabulary
# ----------------------------------------------------------------------


class TestEvents:
    def test_json_line_round_trip(self):
        for event in (PointEvent(label="mcf@1/base", done=1, total=4,
                                 from_cache=True, candidate="a=1"),
                      EvaluationEvent(candidate="a=1", score=1.25,
                                      limit_insns=2000),
                      FindingEvent(workload="synth:ilp@seed=0", scale=1,
                                   instructions=900, ok=False, done=2,
                                   total=5, failures=("x: boom",)),
                      MetricEvent(name="repro_job_phase_seconds",
                                  value=1.25, unit="seconds", job="j1",
                                  labels={"phase": "execute"})):
            decoded = event_from_json_line(event.to_json_line())
            assert decoded == event
            assert decoded.kind == event.kind

    def test_every_kind_has_a_distinct_discriminator(self):
        assert len(EVENT_TYPES) == 11
        assert {"point", "evaluation", "segment", "finding", "metric",
                "job-started", "job-finished", "job-failed",
                "worker-joined", "worker-left",
                "unit-leased"} == set(EVENT_TYPES)

    def test_unknown_kind_rejected_unknown_fields_dropped(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "telemetry"})
        event = event_from_dict({"kind": "point", "label": "x",
                                 "done": 1, "total": 2,
                                 "added_in_v9": "ignored"})
        assert event == PointEvent(label="x", done=1, total=2)

    def test_missing_required_field_is_a_value_error(self):
        # a decoding problem must surface as ValueError (what clients
        # catch), never a raw TypeError from the dataclass call
        with pytest.raises(ValueError, match="bad 'point' event"):
            event_from_dict({"kind": "point", "label": "x"})
        with pytest.raises(ValueError, match="bad 'metric' event"):
            event_from_dict({"kind": "metric", "unit": "seconds"})

    def test_metric_event_round_trips_with_labels(self):
        line = MetricEvent(name="repro_job_phase_seconds",
                           value=0.004125, unit="seconds", job="j3",
                           labels={"phase": "queue"}).to_json_line()
        decoded = event_from_json_line(line)
        assert decoded.kind == "metric"
        assert decoded.labels == {"phase": "queue"}
        assert decoded.value == 0.004125
        rendered = format_event(decoded)
        assert "repro_job_phase_seconds" in rendered
        assert "phase=queue" in rendered
        assert "seconds" in rendered

    def test_format_event_renders_every_kind(self):
        for cls_kind, payload in (
                ("point", {"label": "mcf@1/base", "done": 1,
                           "total": 2}),
                ("segment", {"message": "planned mcf@1", "done": 1,
                             "total": 3}),
                ("finding", {"workload": "w", "scale": 1,
                             "instructions": 5, "ok": True, "done": 1,
                             "total": 1}),
                ("metric", {"name": "repro_job_phase_seconds",
                            "value": 1.5, "unit": "seconds",
                            "labels": {"phase": "execute"}}),
                ("job-started", {"job": "j1", "job_kind": "sweep"}),
                ("job-finished", {"job": "j1", "result": {"points": 2,
                                                          "ledger": "x"}}),
                ("job-failed", {"job": "j1", "error": "boom"})):
            line = format_event(event_from_dict({"kind": cls_kind,
                                                 **payload}))
            assert line and "ledger" not in line


def test_engine_import_does_not_load_service():
    # cli.py keeps serve/watch imports lazy; the engine package must
    # not undo that by eagerly importing asyncio + the HTTP machinery
    import pathlib
    import subprocess
    import sys
    src = str(pathlib.Path(__file__).parents[1] / "src")
    code = ("import sys, repro.engine; "
            "assert 'repro.engine.service' not in sys.modules, "
            "'service imported eagerly'; "
            "from repro.engine import JobManager; "
            "assert 'repro.engine.service' in sys.modules")
    subprocess.run([sys.executable, "-c", code], check=True,
                   env={"PYTHONPATH": src})


# ----------------------------------------------------------------------
# the job manager (no HTTP)
# ----------------------------------------------------------------------


class TestJobManager:
    def test_sweep_job_streams_and_matches_serial(self, tmp_path):
        async def scenario():
            manager = JobManager(store_dir=tmp_path / "store")
            try:
                job = await manager.submit(dict(SWEEP_SPEC))
                events = [e async for e in manager.events(job.id)]
            finally:
                await manager.close()
            return job, events

        job, events = asyncio.run(scenario())
        assert job.status == "finished"
        assert [e.kind for e in events] == \
            ["job-started", "point", "point", "metric", "metric",
             "job-finished"]
        assert events[-1].result["ledger"] == \
            serial_sweep_ledger(tmp_path / "serial")

    def test_concurrent_sweep_and_search_share_one_store(self, tmp_path):
        # ISSUE 5 acceptance: two concurrent jobs over ONE store,
        # byte-identical ledgers vs the serial engine runs
        async def scenario():
            manager = JobManager(store_dir=tmp_path / "shared",
                                 max_concurrent_jobs=2)
            try:
                sweep = await manager.submit(dict(SWEEP_SPEC))
                search = await manager.submit(dict(SEARCH_SPEC))
                sweep_events, search_events = await asyncio.gather(
                    _collect(manager, sweep.id),
                    _collect(manager, search.id))
            finally:
                await manager.close()
            return sweep_events, search_events

        async def _collect(manager, job_id):
            return [e async for e in manager.events(job_id)]

        sweep_events, search_events = asyncio.run(scenario())
        assert sweep_events[-1].kind == "job-finished"
        assert search_events[-1].kind == "job-finished"
        assert any(e.kind == "evaluation" for e in search_events)
        assert sweep_events[-1].result["ledger"] == \
            serial_sweep_ledger(tmp_path / "serial-sweep")
        assert search_events[-1].result["ledger"] == \
            serial_search_ledger(tmp_path / "serial-search")

    def test_parallel_worker_job_matches_serial(self, tmp_path):
        # jobs>1 under the service switches worker pools to spawn
        # (fork in the multi-threaded server can deadlock a child);
        # results must stay byte-identical to the serial run
        from repro.engine.campaign import Campaign, parse_axis
        from repro.engine.pool import set_worker_start_method
        spec = {"kind": "sweep", "workloads": ["mcf", "gcc"],
                "optimized": True, "axes": ["optimizer.vf_delay=0,1"]}

        async def scenario():
            manager = JobManager(store_dir=tmp_path / "store", jobs=2)
            try:
                job = await manager.submit(dict(spec))
                return [e async for e in manager.events(job.id)]
            finally:
                await manager.close()

        try:
            events = asyncio.run(scenario())
        finally:
            set_worker_start_method(None)  # restore for later tests
        assert events[-1].kind == "job-finished"
        campaign = Campaign.from_axes(
            workloads=spec["workloads"],
            base=default_config().with_optimizer(),
            axes=[parse_axis(a) for a in spec["axes"]])
        serial = run_sweep(campaign.points(), jobs=1,
                           store_dir=tmp_path / "serial")
        assert events[-1].result["ledger"] == serial.ledger_json()

    def test_late_subscriber_replays_history(self, tmp_path):
        async def scenario():
            manager = JobManager(store_dir=tmp_path)
            try:
                job = await manager.submit(dict(SWEEP_SPEC))
                await manager.wait(job.id)
                # attach only after the job finished
                replayed = [e async for e in manager.events(job.id)]
            finally:
                await manager.close()
            return replayed

        replayed = asyncio.run(scenario())
        assert [e.kind for e in replayed] == \
            ["job-started", "point", "point", "metric", "metric",
             "job-finished"]

    def test_bad_specs_rejected_at_submit(self, tmp_path):
        async def scenario():
            manager = JobManager(store_dir=tmp_path)
            try:
                for spec in ({"kind": "mine-bitcoin"},
                             # singular typo: must 400, not silently
                             # sweep all 22 kernels
                             {"kind": "sweep", "workload": ["mcf"]},
                             {"kind": "sweep",
                              "axes": ["optimizer.vf_delay=maybe"]},
                             # a string would iterate char-by-char
                             {"kind": "sweep", "workloads": ["mcf"],
                              "scales": "12"},
                             {"kind": "search", "scales": "12",
                              "workloads": ["mcf"],
                              "dims": ["optimizer.enabled=false,true"]},
                             # strategy/objective/budget typos must
                             # 400 now, not job-fail minutes later
                             {"kind": "search", "workloads": ["mcf"],
                              "dims": ["optimizer.enabled=false,true"],
                              "strategy": "gird"},
                             {"kind": "search", "workloads": ["mcf"],
                              "dims": ["optimizer.enabled=false,true"],
                              "objective": "geomean"},
                             {"kind": "search", "workloads": ["mcf"],
                              "dims": ["optimizer.enabled=false,true"],
                              "budget": 0},
                             {"kind": "search", "workloads": ["mcf"],
                              "dims": ["optimizer.enabled=false,true"],
                              "seed": "abc"},
                             {"kind": "fuzz", "seeds": [0, 1],
                              "scale": "x"},
                             # "19" must not be read as seeds [1, 9)
                             {"kind": "fuzz", "seeds": "19"},
                             {"kind": "sweep", "workloads": ["no-such"]},
                             {"kind": "search", "dims": []},
                             {"kind": "search",
                              "dims": ["optimizer.enabled=false,true"]},
                             {"kind": "segments",
                              "workloads": ["mcf"]},
                             {"kind": "fuzz", "seeds": [5, 5]},
                             {"kind": "fuzz", "seeds": [0, 1],
                              "families": ["quantum"]},
                             "not an object"):
                    with pytest.raises(ServiceError):
                        await manager.submit(spec)
                assert manager.list_jobs() == []
            finally:
                await manager.close()

        asyncio.run(scenario())

    def test_cancel_running_job(self, tmp_path):
        async def scenario():
            manager = JobManager(store_dir=tmp_path)
            try:
                job = await manager.submit(dict(LONG_FUZZ_SPEC))
                seen = []
                async for event in manager.events(job.id):
                    seen.append(event)
                    if event.kind == "finding":
                        await manager.cancel(job.id)
                final = await manager.wait(job.id)
            finally:
                await manager.close()
            return final, seen

        job, events = asyncio.run(scenario())
        assert job.status == "cancelled"
        assert events[-1].kind == "job-failed"
        assert events[-1].cancelled
        findings = [e for e in events if e.kind == "finding"]
        # it stopped early: nowhere near the 40 requested programs
        assert 1 <= len(findings) < 40

    def test_cancel_queued_job_and_unknown_job(self, tmp_path):
        async def scenario():
            # one executor slot: the second submission queues behind
            # the first and must be cancellable before it starts
            manager = JobManager(store_dir=tmp_path,
                                 max_concurrent_jobs=1)
            try:
                first = await manager.submit(dict(SWEEP_SPEC))
                queued = await manager.submit(dict(LONG_FUZZ_SPEC))
                # the queued job has not started: it reports pending
                # and has emitted nothing
                queued_status = queued.status
                await manager.cancel(queued.id)
                await manager.wait(first.id)
                final = await manager.wait(queued.id)
                with pytest.raises(ServiceError) as err:
                    manager.get("j999")
            finally:
                await manager.close()
            return first, final, queued_status, err.value

        first, queued, queued_status, error = asyncio.run(scenario())
        assert first.status == "finished"  # unaffected by the cancel
        assert queued_status == "pending"
        assert queued.status == "cancelled"
        # never started: no job-started, no findings — only the
        # terminal cancellation event
        assert [e.kind for e in queued.events] == ["job-failed"]
        assert error.status == 404

    def test_submission_backpressure(self, tmp_path):
        async def scenario():
            manager = JobManager(store_dir=tmp_path,
                                 max_concurrent_jobs=1,
                                 max_active_jobs=1)
            try:
                blocker = await manager.submit(dict(LONG_FUZZ_SPEC))
                with pytest.raises(ServiceError) as err:
                    await manager.submit(dict(SWEEP_SPEC))
                await manager.cancel(blocker.id)
                await manager.wait(blocker.id)
                # capacity freed: submissions flow again
                retry = await manager.submit(dict(SWEEP_SPEC))
                await manager.wait(retry.id)
            finally:
                await manager.close()
            return err.value, retry

        error, retry = asyncio.run(scenario())
        assert error.status == 429
        assert retry.status == "finished"

    def test_idle_stream_yields_heartbeats(self, tmp_path):
        async def scenario():
            # one slot: the sweep queues behind the fuzz job and emits
            # nothing for a while — a heartbeat-tailing consumer gets
            # None markers instead of silence
            manager = JobManager(store_dir=tmp_path,
                                 max_concurrent_jobs=1)
            try:
                blocker = await manager.submit(dict(LONG_FUZZ_SPEC))
                queued = await manager.submit(dict(SWEEP_SPEC))
                beats = 0
                async for event in manager.events(queued.id,
                                                  heartbeat=0.05):
                    if event is None:
                        beats += 1
                        if beats >= 3:
                            break
                    else:
                        raise AssertionError(f"unexpected {event}")
                await manager.cancel(blocker.id)
                await manager.cancel(queued.id)
            finally:
                await manager.close()
            return beats

        assert asyncio.run(scenario()) >= 3

    def test_finished_job_history_is_bounded(self, tmp_path):
        async def scenario():
            manager = JobManager(store_dir=tmp_path,
                                 max_finished_jobs=1)
            try:
                first = await manager.submit(dict(SWEEP_SPEC))
                await manager.wait(first.id)
                second = await manager.submit(dict(SWEEP_SPEC))
                await manager.wait(second.id)
                rows = manager.list_jobs()
                with pytest.raises(ServiceError) as err:
                    manager.get(first.id)
            finally:
                await manager.close()
            return rows, err.value

        rows, error = asyncio.run(scenario())
        # only the newest terminal job is retained (with its events);
        # the older one — ledger payload included — was released
        assert [r["id"] for r in rows] == ["j2"]
        assert error.status == 404


class TestSegmentPolicyJobs:
    def test_policy_is_normalized_and_echoed(self, tmp_path):
        # the deprecated segment_insns spelling is folded into a
        # canonical policy manifest at submit; both the job summary
        # (GET /jobs) and the final result echo the normalized form
        async def scenario():
            manager = JobManager(store_dir=tmp_path)
            try:
                job = await manager.submit(
                    {"kind": "segments", "workloads": ["art"],
                     "segment_insns": 2000})
                summary = job.summary()
                await manager.wait(job.id)
                events = [e async for e in manager.events(job.id)]
            finally:
                await manager.close()
            return summary, events

        summary, events = asyncio.run(scenario())
        assert summary["policy"] == {"mode": "fixed",
                                     "segment_insns": 2000}
        result = events[-1].result
        assert result["policy"] == {"mode": "fixed",
                                    "segment_insns": 2000}
        # an exact run must never carry estimation metadata
        assert "estimated" not in result

    def test_sampled_job_reports_error_bounds(self, tmp_path):
        spec = {"kind": "segments", "workloads": ["art"],
                "policy": {"mode": "sampled", "segment_insns": 1000,
                           "sample_period": 2}}

        async def scenario():
            manager = JobManager(store_dir=tmp_path)
            try:
                job = await manager.submit(spec)
                await manager.wait(job.id)
                events = [e async for e in manager.events(job.id)]
            finally:
                await manager.close()
            return events

        events = asyncio.run(scenario())
        result = events[-1].result
        assert result["estimated"] is True
        assert 0.0 < result["max_relative_error"] < 1.0
        assert result["policy"]["sample_period"] == 2
        assert '"estimated":true' in result["ledger"]

    def test_policy_spec_rejections_name_the_problem(self, tmp_path):
        cases = [
            # unknown fields inside the policy object are listed by
            # name — a typo must 400, not silently fall back to defaults
            ({"kind": "segments", "workloads": ["art"],
              "policy": {"mode": "fixed", "segment_insns": 1000,
                         "warmpu_insns": 5, "zzz": 1}},
             "unknown segment policy fields ['warmpu_insns', 'zzz']"),
            ({"kind": "segments", "workloads": ["art"],
              "policy": {"segment_insns": 1000},
              "segment_insns": 1000},
             "not both"),
            ({"kind": "segments", "workloads": ["art"]},
             "needs a policy"),
            ({"kind": "search", "workloads": ["art"],
              "dims": ["optimizer.enabled=false,true"],
              "rung_mode": "sampeld"},
             "unknown rung_mode"),
            ({"kind": "search", "workloads": ["art"],
              "dims": ["optimizer.enabled=false,true"],
              "rung_mode": "sampled", "rung_period": 1},
             "rung_period must be >= 2"),
        ]

        async def scenario():
            manager = JobManager(store_dir=tmp_path)
            messages = []
            try:
                for spec, _ in cases:
                    with pytest.raises(ServiceError) as err:
                        await manager.submit(spec)
                    messages.append(str(err.value))
                assert manager.list_jobs() == []
            finally:
                await manager.close()
            return messages

        messages = asyncio.run(scenario())
        for (_, needle), message in zip(cases, messages):
            assert needle in message


# ----------------------------------------------------------------------
# the HTTP front end
# ----------------------------------------------------------------------


class ServiceThread:
    """Run a JobManager + ServiceServer on a background event loop."""

    def __init__(self, store_dir, jobs=1, max_concurrent_jobs=4):
        self._ready = threading.Event()
        self._args = (str(store_dir), jobs, max_concurrent_jobs)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "service did not start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        store_dir, jobs, max_concurrent = self._args
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.manager = JobManager(store_dir=store_dir, jobs=jobs,
                                  max_concurrent_jobs=max_concurrent)
        server = ServiceServer(self.manager, host="127.0.0.1", port=0)
        self.port = await server.start()
        self.url = f"http://127.0.0.1:{self.port}"
        self._ready.set()
        await self._stop.wait()
        await server.stop()
        await self.manager.close()

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    # -- blocking client helpers --------------------------------------

    def post_job(self, spec: dict) -> dict:
        return request_json(self.url, "POST", "/jobs", payload=spec)

    def jobs(self) -> list[dict]:
        return request_json(self.url, "GET", "/jobs")["jobs"]

    def job_status(self, job_id: str) -> str:
        return next(j["status"] for j in self.jobs()
                    if j["id"] == job_id)

    def stream_events(self, job_id: str) -> list:
        events = []
        watch_job(self.url, job_id, events.append)
        return events

    def wait_status(self, job_id: str, timeout: float = 120.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.job_status(job_id)
            if status in ("finished", "failed", "cancelled"):
                return status
            time.sleep(0.1)
        raise TimeoutError(f"job {job_id} still {status!r}")


@pytest.fixture
def service(tmp_path):
    # the registry is process-global and other tests bump it; a fresh
    # slate keeps this fixture's exact-count metric assertions honest
    from repro.engine.telemetry import TELEMETRY
    TELEMETRY.reset()
    thread = ServiceThread(tmp_path / "store")
    yield thread
    thread.stop()


class TestHttpService:
    def test_submit_stream_list_delete_lifecycle(self, service,
                                                 tmp_path):
        created = service.post_job(dict(SWEEP_SPEC))
        assert created["id"] == "j1"
        assert created["kind"] == "sweep"
        events = service.stream_events(created["id"])
        assert [e.kind for e in events] == \
            ["job-started", "point", "point", "metric", "metric",
             "job-finished"]
        assert events[-1].result["ledger"] == \
            serial_sweep_ledger(tmp_path / "serial")
        rows = service.jobs()
        assert [r["id"] for r in rows] == ["j1"]
        assert rows[0]["status"] == "finished"
        # DELETE of a finished job is a no-op
        gone = request_json(service.url, "DELETE", "/jobs/j1")
        assert gone["status"] == "finished"

    def test_stream_is_json_lines_with_ndjson_content_type(self,
                                                           service):
        created = service.post_job(dict(SWEEP_SPEC))
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=120)
        try:
            conn.request("GET", f"/jobs/{created['id']}/events")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "application/x-ndjson"
            raw = response.read().decode()
        finally:
            conn.close()
        lines = [line for line in raw.split("\n") if line]
        # every frame is one standalone JSON object with a kind
        decoded = [json.loads(line) for line in lines]
        assert all("kind" in d for d in decoded)
        assert decoded[0]["kind"] == "job-started"
        assert decoded[-1]["kind"] == "job-finished"
        # and round-trips through the typed vocabulary
        assert [event_from_json_line(line).kind for line in lines] == \
            [d["kind"] for d in decoded]

    def test_client_disconnect_cancels_nothing(self, service):
        created = service.post_job(dict(LONG_FUZZ_SPEC))
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=60)
        conn.request("GET", f"/jobs/{created['id']}/events")
        response = conn.getresponse()
        assert response.readline()  # at least one frame arrived
        conn.close()  # hang up mid-stream
        # the job — already submitted — runs to completion regardless
        assert service.wait_status(created["id"]) == "finished"
        events = service.stream_events(created["id"])
        findings = [e for e in events if e.kind == "finding"]
        assert len(findings) == 40
        assert events[-1].result["ok"] is True

    def test_delete_running_job_cancels_it(self, service):
        created = service.post_job(dict(LONG_FUZZ_SPEC))
        # wait until it demonstrably started
        deadline = time.monotonic() + 60
        while service.job_status(created["id"]) == "pending":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        cancelled = request_json(service.url, "DELETE",
                                 f"/jobs/{created['id']}")
        assert cancelled["id"] == created["id"]
        assert service.wait_status(created["id"]) == "cancelled"
        events = service.stream_events(created["id"])
        assert events[-1].kind == "job-failed"
        assert events[-1].cancelled

    def test_error_statuses(self, service):
        with pytest.raises(ServiceError) as err:
            request_json(service.url, "GET", "/jobs/j999/events")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            request_json(service.url, "POST", "/jobs",
                         payload={"kind": "nope"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            request_json(service.url, "GET", "/no/such/route")
        assert err.value.status == 404
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=30)
        try:
            conn.request("POST", "/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_watch_cli_exit_codes(self, service, capsys):
        created = service.post_job(dict(SWEEP_SPEC))
        assert main(["watch", created["id"], "--url",
                     service.url]) == 0
        captured = capsys.readouterr()
        out = captured.out
        assert f"job {created['id']} started" in out
        assert f"job {created['id']} finished" in out
        assert '"ledger":' not in out  # summaries stay human-sized
        # the final one-line verdict: wall time + insns + exit state
        summary = captured.err.strip().splitlines()[-1]
        assert summary.startswith(f"job {created['id']} finished")
        assert "s wall" in summary
        assert "insns simulated" in summary
        assert main(["watch", "j999", "--url", service.url]) == 2
        assert "repro watch: error" in capsys.readouterr().err

    def test_run_service_end_to_end(self, tmp_path):
        # the coroutine behind `repro serve`: announce callback fires
        # with the ephemeral port, jobs run over HTTP, a shutdown
        # event stops it cleanly
        async def scenario():
            shutdown = asyncio.Event()
            announced = {}

            def announce(host, port, store_dir):
                announced.update(host=host, port=port, store=store_dir)

            task = asyncio.create_task(run_service(
                store_dir=str(tmp_path), port=0, announce=announce,
                shutdown=shutdown))
            while not announced:
                await asyncio.sleep(0.01)
            url = f"http://{announced['host']}:{announced['port']}"
            created = await asyncio.to_thread(
                request_json, url, "POST", "/jobs", dict(SWEEP_SPEC))
            events = []
            await asyncio.to_thread(watch_job, url, created["id"],
                                    events.append)
            shutdown.set()
            assert await task == 0
            return announced, events

        announced, events = asyncio.run(scenario())
        assert announced["store"] == str(tmp_path)
        assert events[-1].kind == "job-finished"

    def test_serve_cli_reports_busy_port_as_usage_error(self, capsys):
        import socket
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            assert main(["serve", "--port", str(port)]) == 2
        err = capsys.readouterr().err
        assert "repro serve: error:" in err

    def test_watch_cli_json_mode(self, service, capsys):
        created = service.post_job(dict(SWEEP_SPEC))
        assert main(["watch", created["id"], "--url", service.url,
                     "--json"]) == 0
        lines = [line for line in
                 capsys.readouterr().out.splitlines() if line]
        assert json.loads(lines[0])["kind"] == "job-started"
        assert json.loads(lines[-1])["kind"] == "job-finished"


class TestHttpProtocolHardening:
    """The PR-9 service-layer bugfix sweep's protocol cases."""

    def _raw_request(self, port: int, payload: bytes) -> bytes:
        import socket
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=30) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)

    def test_conflicting_duplicate_content_length_is_400(self,
                                                         service):
        # the request-smuggling class: two disagreeing lengths must
        # not be resolved by last-one-wins framing
        body = b'{"kind": "sweep", "workloads": ["mcf"]}'
        response = self._raw_request(
            service.port,
            b"POST /jobs HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: 5\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"conflicting Content-Length" in response
        assert service.jobs() == []  # nothing was submitted

    def test_identical_duplicate_content_length_is_tolerated(
            self, service):
        # RFC 9110 allows repeats that agree; rejecting them would
        # break naive proxies that re-append the header
        body = b'{"kind": "sweep", "workloads": ["mcf"]}'
        head = (f"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        response = self._raw_request(service.port, head + body)
        assert response.startswith(b"HTTP/1.1 201 ")

    def test_summary_and_result_carry_iso_wall_clock_stamps(
            self, service):
        from datetime import datetime, timezone
        created = service.post_job(dict(SWEEP_SPEC))
        assert created["submitted"].endswith("Z")
        submitted = datetime.fromisoformat(created["submitted"])
        assert abs((datetime.now(timezone.utc)
                    - submitted).total_seconds()) < 60
        events = service.stream_events(created["id"])
        result = events[-1].result
        assert result["submitted"] == created["submitted"]
        started = datetime.fromisoformat(result["started"])
        assert started >= submitted
        # the determinism contract: wall-clock stamps never leak into
        # the canonical ledger
        assert "submitted" not in result["ledger"]
        row = service.jobs()[0]
        assert row["submitted"] == created["submitted"]
        assert row["started"] == result["started"]

    def test_client_honors_url_path_prefix(self):
        # `--url http://host:port/prefix` used to silently request
        # /jobs at the root; every request must carry the prefix
        import http.server
        import socketserver

        seen = []

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                seen.append(self.path)
                body = b'{"jobs": []}\n'
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        with socketserver.TCPServer(("127.0.0.1", 0), Handler) as httpd:
            port = httpd.server_address[1]
            worker = threading.Thread(target=httpd.serve_forever,
                                      daemon=True)
            worker.start()
            try:
                payload = request_json(
                    f"http://127.0.0.1:{port}/repro/", "GET", "/jobs")
                assert payload == {"jobs": []}
            finally:
                httpd.shutdown()
        assert seen == ["/repro/jobs"]

    def test_truncated_stream_makes_watch_exit_2(self, capsys):
        # a server dying mid-stream ends the connection without a
        # terminal event; `repro watch` must report failure (exit 2),
        # never a clean 0
        import socket

        def half_stream(server_sock):
            conn, _ = server_sock.accept()
            with conn:
                while b"\r\n\r\n" not in conn.recv(65536):
                    pass
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/x-ndjson\r\n"
                    b"Connection: close\r\n\r\n"
                    b'{"kind": "job-started", "job": "j1",'
                    b' "job_kind": "sweep", "name": "j1"}\n')
                # connection closes here: no job-finished ever arrives

        with socket.socket() as server_sock:
            server_sock.bind(("127.0.0.1", 0))
            server_sock.listen(1)
            port = server_sock.getsockname()[1]
            worker = threading.Thread(target=half_stream,
                                      args=(server_sock,), daemon=True)
            worker.start()
            code = main(["watch", "j1", "--url",
                         f"http://127.0.0.1:{port}"])
            worker.join(10)
        assert code == 2
        err = capsys.readouterr().err
        assert "ended without a terminal event" in err


# ----------------------------------------------------------------------
# watch reconnect + event-stream resume
# ----------------------------------------------------------------------


def _ndjson_stub(server_sock, lines, requests, reset_after=None):
    """Answer one GET with *lines* from the ``?from=`` index onward.

    ``reset_after`` truncates the stream after that many lines and
    aborts the connection with an RST (``SO_LINGER 0``) — the
    transport failure a mid-stream server death produces, as opposed
    to the clean FIN of an on-purpose close.
    """
    import socket as socket_mod
    import struct as struct_mod
    import urllib.parse
    conn, _ = server_sock.accept()
    request = b""
    while b"\r\n\r\n" not in request:
        request += conn.recv(65536)
    path = request.split(b" ", 2)[1].decode()
    requests.append(path)
    query = urllib.parse.parse_qs(urllib.parse.urlsplit(path).query)
    start = int(query.get("from", ["0"])[0])
    conn.sendall(b"HTTP/1.1 200 OK\r\n"
                 b"Content-Type: application/x-ndjson\r\n"
                 b"Connection: close\r\n\r\n")
    for line in lines[start:reset_after]:
        conn.sendall(line.encode() + b"\n")
    if reset_after is not None:
        time.sleep(0.2)  # let the delivered prefix reach the client
        conn.setsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_LINGER,
                        struct_mod.pack("ii", 1, 0))
    conn.close()


class TestWatchReconnect:
    LINES = [
        '{"kind": "job-started", "job": "j1", "job_kind": "sweep",'
        ' "name": "j1"}',
        '{"kind": "point", "label": "a@1/base", "done": 1, "total": 2}',
        '{"kind": "point", "label": "a@1/opt", "done": 2, "total": 2}',
        '{"kind": "job-finished", "job": "j1", "result": {}}',
    ]

    def _stub_server(self, connections):
        import socket as socket_mod
        requests = []
        server_sock = socket_mod.socket()
        server_sock.bind(("127.0.0.1", 0))
        server_sock.listen(2)
        port = server_sock.getsockname()[1]

        def serve():
            with server_sock:
                for reset_after in connections:
                    _ndjson_stub(server_sock, self.LINES, requests,
                                 reset_after=reset_after)

        worker = threading.Thread(target=serve, daemon=True)
        worker.start()
        return port, requests, worker

    def test_watch_resumes_after_mid_stream_reset(self):
        # first connection dies by RST after two events; the retry
        # must pick up at ?from=<seen> — every event exactly once
        port, requests, worker = self._stub_server([2, None])
        seen = []
        retries = []
        last = watch_job(f"http://127.0.0.1:{port}", "j1", seen.append,
                         timeout=30, backoff=0.01,
                         on_reconnect=lambda n, exc:
                         retries.append(n))
        worker.join(10)
        assert last is not None and last.kind == "job-finished"
        assert [e.kind for e in seen] == \
            ["job-started", "point", "point", "job-finished"]
        assert retries == [1]
        assert requests[0].endswith("?from=0")
        # the resume index equals what the first stream delivered
        first_served = int(requests[1].rpartition("=")[2])
        assert first_served == len(
            [e for e in seen][:first_served])
        assert 1 <= first_served <= 2

    def test_watch_cli_survives_a_drop_and_exits_0(self, capsys):
        port, requests, worker = self._stub_server([2, None])
        code = main(["watch", "j1", "--url",
                     f"http://127.0.0.1:{port}"])
        worker.join(10)
        assert code == 0
        assert len(requests) == 2
        err = capsys.readouterr().err
        assert "reconnecting" in err

    def test_retry_budget_exhausts_to_an_error(self):
        # every connection dies: after --retries attempts the failure
        # propagates instead of looping forever
        port, requests, worker = self._stub_server([1, 1, 1])
        with pytest.raises((ConnectionError, OSError)):
            watch_job(f"http://127.0.0.1:{port}", "j1", lambda e: None,
                      timeout=30, retries=2, backoff=0.01)
        worker.join(10)
        assert len(requests) == 3  # initial try + 2 retries

    def test_clean_eof_is_not_retried(self):
        # a server that closes cleanly without a terminal event (the
        # truncated-stream case) must NOT trigger reconnects
        port, requests, worker = self._stub_server([None])
        seen = []
        last = watch_job(f"http://127.0.0.1:{port}", "j1", seen.append,
                         timeout=30, backoff=0.01)
        worker.join(10)
        assert last.kind == "job-finished"
        assert len(requests) == 1


class TestEventStreamFromIndex:
    def test_from_skips_already_seen_events(self, service):
        created = service.post_job(dict(SWEEP_SPEC))
        service.wait_status(created["id"])
        full = service.stream_events(created["id"])
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=120)
        try:
            conn.request("GET",
                         f"/jobs/{created['id']}/events?from=3")
            response = conn.getresponse()
            assert response.status == 200
            raw = response.read().decode()
        finally:
            conn.close()
        tail = [event_from_json_line(line)
                for line in raw.split("\n") if line]
        assert tail == full[3:]

    def test_bad_from_index_is_400(self, service):
        created = service.post_job(dict(SWEEP_SPEC))
        service.wait_status(created["id"])
        for bad in ("nan", "-1", "1.5"):
            conn = http.client.HTTPConnection("127.0.0.1",
                                              service.port, timeout=30)
            try:
                conn.request("GET", f"/jobs/{created['id']}/events"
                                    f"?from={bad}")
                assert conn.getresponse().status == 400
            finally:
                conn.close()


# ----------------------------------------------------------------------
# the job journal (`serve --resume`)
# ----------------------------------------------------------------------


class TestJobJournal:
    def _journal(self, store) -> "pathlib.Path":
        return store / "jobs"

    def test_unfinished_jobs_resume_on_restart(self, tmp_path):
        # simulate a crashed server: journal an accepted-but-never-
        # finished job by hand (exactly the file a real crash leaves)
        store = tmp_path / "store"
        journal = self._journal(store)
        journal.mkdir(parents=True)
        (journal / "j1.json").write_text(json.dumps(
            {"kind": "sweep", "name": "nightly", "tenant": "",
             "spec": {k: v for k, v in SWEEP_SPEC.items()
                      if k != "kind"},
             "submitted": "2026-08-08T00:00:00.000Z"}))

        async def scenario():
            manager = JobManager(store_dir=store)
            try:
                resumed = await manager.resume_jobs()
                events = [e async for e in
                          manager.events(resumed[0].id)]
            finally:
                await manager.close()
            return resumed, events

        resumed, events = asyncio.run(scenario())
        assert [job.name for job in resumed] == ["nightly"]
        assert events[-1].kind == "job-finished"
        assert events[-1].result["ledger"] == \
            serial_sweep_ledger(tmp_path / "serial")
        # the entry was consumed: a second restart resumes nothing
        assert list(journal.glob("*.json")) == []

    def test_finished_jobs_leave_no_journal_entries(self, tmp_path):
        store = tmp_path / "store"

        async def scenario():
            manager = JobManager(store_dir=store)
            try:
                job = await manager.submit(dict(SWEEP_SPEC))
                await manager.wait(job.id)
            finally:
                await manager.close()

        asyncio.run(scenario())
        assert list(self._journal(store).glob("*.json")) == []

    def test_shutdown_keeps_running_jobs_journaled(self, tmp_path):
        # close() cancels running jobs, but a shutdown is not a
        # verdict: their journal entries must survive for --resume
        store = tmp_path / "store"

        async def scenario():
            manager = JobManager(store_dir=store)
            job = await manager.submit(dict(LONG_FUZZ_SPEC))
            while job.status == "pending":
                await asyncio.sleep(0.01)
            await manager.close()
            return job

        job = asyncio.run(scenario())
        assert job.status == "cancelled"
        entries = list(self._journal(store).glob("*.json"))
        assert [p.name for p in entries] == [f"{job.id}.json"]

        async def restart():
            manager = JobManager(store_dir=store)
            try:
                return list(await manager.resume_jobs())
            finally:
                await manager.close()

        resumed = asyncio.run(restart())
        assert len(resumed) == 1
        assert resumed[0].kind == "fuzz"

    def test_client_cancelled_jobs_are_not_resumed(self, tmp_path):
        # a deliberate DELETE is a verdict; only shutdown-cancelled
        # jobs keep their entries
        store = tmp_path / "store"

        async def scenario():
            manager = JobManager(store_dir=store)
            try:
                job = await manager.submit(dict(LONG_FUZZ_SPEC))
                while job.status == "pending":
                    await asyncio.sleep(0.01)
                await manager.cancel(job.id)
                await manager.wait(job.id)
            finally:
                await manager.close()

        asyncio.run(scenario())
        assert list(self._journal(store).glob("*.json")) == []

    def test_corrupt_and_invalid_entries_are_dropped(self, tmp_path):
        store = tmp_path / "store"
        journal = self._journal(store)
        journal.mkdir(parents=True)
        (journal / "j1.json").write_text("not json {")
        (journal / "j2.json").write_text(json.dumps(
            {"kind": "mine-bitcoin", "name": "", "tenant": "",
             "spec": {}}))

        async def scenario():
            manager = JobManager(store_dir=store)
            try:
                return await manager.resume_jobs()
            finally:
                await manager.close()

        assert asyncio.run(scenario()) == []
        assert list(journal.glob("*.json")) == []

    def test_scratch_store_resumes_nothing(self):
        async def scenario():
            manager = JobManager(store_dir=None)
            try:
                await manager.submit(dict(SWEEP_SPEC))
                return await manager.resume_jobs()
            finally:
                await manager.close()

        assert asyncio.run(scenario()) == []

    def test_serve_resume_without_store_is_a_usage_error(self, capsys):
        assert main(["serve", "--resume", "--port", "0"]) == 2
        assert "--store" in capsys.readouterr().err


class TestMetricsEndpoint:
    def _fetch(self, service, path):
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=60)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return (response.status, response.getheader("Content-Type"),
                    response.read().decode())
        finally:
            conn.close()

    def test_prometheus_text_covers_job_and_engine_metrics(self,
                                                           service):
        created = service.post_job(dict(SWEEP_SPEC))
        service.stream_events(created["id"])
        status, content_type, text = self._fetch(service, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        samples = {line.split()[0]: line.split()[1]
                   for line in text.splitlines()
                   if line and not line.startswith("#")
                   and "{" not in line.split()[0]}
        assert int(samples["repro_jobs_submitted_total"]) == 1
        assert int(samples["repro_jobs_finished_total"]) == 1
        assert int(samples["repro_job_queue_depth"]) == 0
        assert int(samples["repro_store_put_bytes_total"]) > 0
        assert int(samples["repro_sim_runs_total"]) >= 2
        assert float(samples["repro_sim_insns_per_second"]) > 0
        # the packed-trace core reports its builds through the service
        assert int(samples["repro_trace_packed_builds_total"]) >= 1
        assert int(samples["repro_trace_packed_bytes_total"]) > 0
        assert float(samples["repro_dispatch_table_build_seconds"]) > 0
        # histogram families render TYPE + bucket/sum/count series
        assert "# TYPE repro_job_phase_seconds histogram" in text
        assert 'repro_job_phase_seconds_bucket{phase="execute",' \
            'le="+Inf"}' in text

    def test_json_format_returns_the_snapshot(self, service):
        created = service.post_job(dict(SWEEP_SPEC))
        service.stream_events(created["id"])
        snap = request_json(service.url, "GET", "/metrics?format=json")
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["repro_jobs_finished_total"][""] == 1
        phases = snap["histograms"]["repro_job_phase_seconds"]
        assert phases['phase="execute"']["count"] == 1
        # jobs-by-state gauges refresh at scrape time
        assert snap["gauges"]["repro_jobs"]['state="finished"'] == 1

    def test_metrics_cli_renders_a_live_service(self, service,
                                                capsys):
        created = service.post_job(dict(SWEEP_SPEC))
        service.stream_events(created["id"])
        assert main(["metrics", "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert "repro_jobs_finished_total" in out
        assert "repro_job_phase_seconds" in out
        assert main(["metrics", "--url", service.url, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["repro_jobs_submitted_total"][""] >= 1
        # an unreachable service is a clean exit-2 client error
        assert main(["metrics", "--url",
                     "http://127.0.0.1:1"]) == 2
        assert "repro metrics" in capsys.readouterr().err
