"""Tests for the unified execution-backend layer (ISSUE 10).

The acceptance bar: inline, pool, and socket-worker backends produce
byte-identical exact-mode ledgers for flat sweeps, segmented sweeps
(fixed and adaptive), searches, and fuzz campaigns — with any worker
count — because backends only choose the execution *mechanism* while
``jobs`` stays the planning knob.  Plus the distribution plumbing:
host:port parsing, backend resolution, store blob replication by
content hash, lease requeue when a worker drops, and the
worker-lifecycle event vocabulary.
"""

import json
import pickle
import socket
import struct
import threading

import pytest

from repro.engine.backend import (BACKEND_NAMES, PROTOCOL_VERSION,
                                  ExecutionEnv, InlineBackend,
                                  PoolBackend, SocketWorkerBackend,
                                  WorkUnit, execute_unit,
                                  parse_host_port, register_executor,
                                  resolve_backend, run_worker)
from repro.engine.campaign import Campaign
from repro.engine.differential import run_fuzz
from repro.engine.events import (UnitLeasedEvent, WorkerJoinedEvent,
                                 WorkerLeftEvent, event_from_json_line)
from repro.engine.pool import run_sweep
from repro.engine.search import SearchSpace, run_search
from repro.engine.segments import SegmentPolicy
from repro.engine.store import ArtifactStore
from repro.experiments import runner

WORKLOADS = ["synth:ilp@seed=0", "synth:mixed@seed=1"]
AXES = [("optimizer.enabled", [False, True])]


@pytest.fixture(autouse=True)
def _clean_runner_state():
    runner.clear_caches(detach_store=True)
    yield
    runner.clear_caches(detach_store=True)


def _campaign() -> Campaign:
    return Campaign.from_axes(workloads=WORKLOADS, axes=AXES)


@register_executor("test-echo")
def _echo_executor(payload, env):
    return ("echo",) + tuple(payload)


class _WorkerFleet:
    """In-process ``run_worker`` threads against one lease server."""

    def __init__(self, backend: SocketWorkerBackend, tmp_path,
                 workers: int):
        self.backend = backend
        self.threads = [
            threading.Thread(
                target=run_worker,
                args=(f"127.0.0.1:{backend.port}",),
                kwargs={"store_dir": tmp_path / f"replica-{index}",
                        "name": f"w{index}"},
                daemon=True)
            for index in range(workers)]
        for thread in self.threads:
            thread.start()

    def close(self) -> None:
        self.backend.close()
        for thread in self.threads:
            thread.join(timeout=60)


@pytest.fixture
def fleet_factory(tmp_path):
    fleets = []

    def make(workers: int = 1, store: bool = True,
             on_event=None) -> SocketWorkerBackend:
        backend = SocketWorkerBackend(
            store_dir=tmp_path / "server-store" if store else None,
            parallelism=4, on_event=on_event)
        fleets.append(_WorkerFleet(backend, tmp_path, workers))
        return backend

    yield make
    for fleet in fleets:
        fleet.close()


# ----------------------------------------------------------------------
# plumbing: addresses, resolution, unit dispatch
# ----------------------------------------------------------------------


class TestParseHostPort:
    def test_forms(self):
        assert parse_host_port("10.0.0.7:9900") == ("10.0.0.7", 9900)
        assert parse_host_port(":9900") == ("127.0.0.1", 9900)
        assert parse_host_port("9900") == ("127.0.0.1", 9900)

    @pytest.mark.parametrize("bad", ["host:", "host:nan", "", "a:b:c",
                                     "host:0", "host:70000"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="bad worker"):
            parse_host_port(bad)


class TestResolveBackend:
    def test_auto_serial_is_inline(self):
        backend, owned = resolve_backend(None, jobs=1)
        assert isinstance(backend, InlineBackend) and owned

    def test_auto_parallel_is_pool(self):
        backend, owned = resolve_backend(None, jobs=4)
        assert isinstance(backend, PoolBackend) and owned
        assert backend.parallelism == 4
        backend.close()

    def test_single_unit_collapses_to_inline(self):
        backend, _ = resolve_backend(None, jobs=4, units=1)
        assert isinstance(backend, InlineBackend)

    def test_units_cap_pool_size(self):
        backend, _ = resolve_backend("pool", jobs=8, units=3)
        assert backend.parallelism == 3
        backend.close()

    def test_instance_passes_through_unowned(self):
        live = InlineBackend()
        backend, owned = resolve_backend(live, jobs=4)
        assert backend is live and not owned

    def test_workers_name_needs_a_live_server(self):
        with pytest.raises(ValueError, match="lease server"):
            resolve_backend("workers", jobs=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("threads", jobs=4)

    def test_names_are_the_cli_vocabulary(self):
        assert BACKEND_NAMES == ("inline", "pool", "workers")


class TestUnitDispatch:
    def test_registered_kind_executes(self):
        unit = WorkUnit(kind="test-echo", payload=(1, 2))
        assert execute_unit(unit, ExecutionEnv()) == ("echo", 1, 2)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown work unit kind"):
            execute_unit(WorkUnit(kind="no-such", payload=()),
                         ExecutionEnv())

    def test_inline_group_completes_in_submission_order(self):
        group = InlineBackend().group()
        tickets = [group.submit(WorkUnit("test-echo", (n,)))
                   for n in range(3)]
        got = [group.wait_any() for _ in range(3)]
        assert got == [(t, ("echo", n))
                       for t, n in zip(tickets, range(3))]
        assert group.pending == 0

    def test_wait_any_without_pending_raises(self):
        with pytest.raises(RuntimeError, match="no pending"):
            InlineBackend().group().wait_any()


# ----------------------------------------------------------------------
# the determinism contract, across backends
# ----------------------------------------------------------------------


class TestBackendParity:
    def test_flat_sweep_ledgers_match(self, tmp_path, fleet_factory):
        points = _campaign().points()
        inline = run_sweep(points, jobs=2, backend="inline")
        pool = run_sweep(points, jobs=2, backend="pool")
        one = run_sweep(points, jobs=2, backend=fleet_factory(1))
        four = run_sweep(points, jobs=2, backend=fleet_factory(4))
        assert inline.ledger_json() == pool.ledger_json()
        assert inline.ledger_json() == one.ledger_json()
        assert inline.ledger_json() == four.ledger_json()

    def test_segmented_fixed_ledgers_match(self, tmp_path,
                                           fleet_factory):
        points = _campaign().points()
        inline = run_sweep(points, jobs=2, segment_insns=2000,
                           store_dir=tmp_path / "inline",
                           backend="inline")
        pool = run_sweep(points, jobs=2, segment_insns=2000,
                         store_dir=tmp_path / "pool", backend="pool")
        fleet = fleet_factory(2)
        sockets = run_sweep(points, jobs=2, segment_insns=2000,
                            store_dir=fleet.store_dir, backend=fleet)
        assert inline.ledger_json() == pool.ledger_json()
        assert inline.ledger_json() == sockets.ledger_json()

    def test_segmented_adaptive_ledgers_match(self, tmp_path,
                                              fleet_factory):
        points = _campaign().points()
        policy = SegmentPolicy(mode="adaptive")
        inline = run_sweep(points, jobs=2, segment_policy=policy,
                           store_dir=tmp_path / "inline",
                           backend="inline")
        fleet = fleet_factory(2)
        sockets = run_sweep(points, jobs=2, segment_policy=policy,
                            store_dir=fleet.store_dir, backend=fleet)
        assert inline.ledger_json() == sockets.ledger_json()

    def test_search_ledgers_match(self, tmp_path, fleet_factory):
        space = SearchSpace.from_specs(
            ["optimizer.enabled=false,true", "sched_entries=8,16"])

        def search(backend):
            return run_search(space, workloads=tuple(WORKLOADS),
                              strategy="random", budget=3, seed=11,
                              jobs=2, backend=backend)

        inline = search("inline")
        pool = search("pool")
        sockets = search(fleet_factory(2))
        assert inline.ledger_json() == pool.ledger_json()
        assert inline.ledger_json() == sockets.ledger_json()

    def test_fuzz_reports_match(self, fleet_factory):
        seeds = range(0, 2)

        def fuzz(backend):
            return json.dumps(run_fuzz(
                seeds, families=("ilp", "mixed"), small=True,
                jobs=2, backend=backend).to_dict(), sort_keys=True)

        inline = fuzz("inline")
        assert inline == fuzz(fleet_factory(2, store=False))

    def test_fuzz_events_match_across_backends(self, fleet_factory):
        def stream(backend):
            events = []
            run_fuzz(range(0, 2), families=("ilp",), small=True,
                     jobs=2, backend=backend,
                     progress=lambda e: events.append(e.to_json_line()))
            return events

        assert stream("inline") == stream(fleet_factory(2, store=False))


# ----------------------------------------------------------------------
# store replication by content hash
# ----------------------------------------------------------------------


class TestBlobReplication:
    def _seeded_store(self, tmp_path) -> ArtifactStore:
        run_sweep(_campaign().points()[:2], jobs=1,
                  store_dir=tmp_path / "seeded")
        return ArtifactStore(tmp_path / "seeded")

    def test_push_pull_round_trip(self, tmp_path):
        source = self._seeded_store(tmp_path)
        ids = source.blob_ids()
        assert ids, "sweep should have persisted artifacts"
        replica = ArtifactStore(tmp_path / "replica")
        assert replica.blob_ids() == []
        # replication is "fetch missing hashes": copy the difference
        for kind, name in ids:
            assert not replica.has_blob(kind, name)
            payload = source.read_blob(kind, name)
            assert replica.write_blob(kind, name, payload)
        assert replica.blob_ids() == ids
        for kind, name in ids:
            assert replica.read_blob(kind, name) \
                == source.read_blob(kind, name)

    def test_rewrite_is_idempotent(self, tmp_path):
        source = self._seeded_store(tmp_path)
        kind, name = source.blob_ids()[0]
        payload = source.read_blob(kind, name)
        assert source.write_blob(kind, name, payload) is False

    @pytest.mark.parametrize("bad", ["../../evil.pkl", "evil.pkl",
                                     "a" * 64 + ".exe", "..", ""])
    def test_traversal_and_non_content_names_rejected(self, tmp_path,
                                                      bad):
        store = ArtifactStore(tmp_path / "s")
        with pytest.raises(ValueError, match="bad blob name"):
            store.read_blob("traces", bad)
        with pytest.raises(ValueError, match="bad blob name"):
            store.write_blob("traces", bad, b"x")

    def test_unknown_kind_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        with pytest.raises(ValueError, match="unknown blob kind"):
            store.read_blob("kernels", "0" * 64 + ".pkl")

    def test_worker_replica_converges_to_server_store(self, tmp_path,
                                                      fleet_factory):
        fleet = fleet_factory(1)
        run_sweep(_campaign().points(), jobs=2,
                  store_dir=fleet.store_dir, backend=fleet)
        server = ArtifactStore(fleet.store_dir)
        replica = ArtifactStore(tmp_path / "replica-0")
        assert set(replica.blob_ids()) >= set(
            (kind, name) for kind, name in server.blob_ids()
            if kind == "traces")


# ----------------------------------------------------------------------
# lease-server behaviour: drops, protocol, events, telemetry
# ----------------------------------------------------------------------

_FRAME = struct.Struct(">Q")


def _client_send(conn, message) -> None:
    payload = pickle.dumps(message)
    conn.sendall(_FRAME.pack(len(payload)) + payload)


def _client_recv(conn):
    header = b""
    while len(header) < _FRAME.size:
        header += conn.recv(_FRAME.size - len(header))
    (length,) = _FRAME.unpack(header)
    payload = b""
    while len(payload) < length:
        payload += conn.recv(length - len(payload))
    return pickle.loads(payload)


class TestLeaseServer:
    def test_dropped_worker_requeues_its_lease(self, tmp_path):
        events = []
        backend = SocketWorkerBackend(on_event=events.append)
        try:
            group = backend.group()
            ticket = group.submit(WorkUnit("test-echo", ("seed",)))
            # a hand-rolled worker leases the unit, then drops dead
            with socket.create_connection(("127.0.0.1",
                                           backend.port)) as conn:
                _client_send(conn, {"op": "hello",
                                    "protocol": PROTOCOL_VERSION,
                                    "name": "flaky", "pid": 1})
                assert _client_recv(conn)["op"] == "welcome"
                _client_send(conn, {"op": "lease"})
                assert _client_recv(conn)["op"] == "unit"
            # the requeued unit lands on the next (healthy) worker
            thread = threading.Thread(
                target=run_worker,
                args=(f"127.0.0.1:{backend.port}",),
                kwargs={"name": "steady", "max_units": 1},
                daemon=True)
            thread.start()
            assert group.wait_any() == (ticket, ("echo", "seed"))
            thread.join(timeout=60)
        finally:
            backend.close()
        left = [e for e in events if e.kind == "worker-left"
                and e.worker == "flaky"]
        assert left and left[0].requeued == 1
        leases = [e for e in events if e.kind == "unit-leased"]
        assert [lease.worker for lease in leases] == ["flaky", "steady"]

    def test_protocol_mismatch_is_refused(self):
        backend = SocketWorkerBackend()
        try:
            with socket.create_connection(("127.0.0.1",
                                           backend.port)) as conn:
                _client_send(conn, {"op": "hello", "protocol": 99,
                                    "name": "old", "pid": 1})
                reply = _client_recv(conn)
            assert reply["op"] == "reject"
            assert "protocol" in reply["error"]
            assert backend.worker_count() == 0
        finally:
            backend.close()

    def test_unit_failure_travels_home_as_an_exception(self, tmp_path):
        backend = SocketWorkerBackend()
        thread = threading.Thread(
            target=run_worker, args=(f"127.0.0.1:{backend.port}",),
            kwargs={"max_units": 1}, daemon=True)
        thread.start()
        try:
            group = backend.group()
            group.submit(WorkUnit("no-such-kind", ()))
            with pytest.raises(RuntimeError,
                               match="remote work unit failed"):
                group.wait_any()
            thread.join(timeout=60)
        finally:
            backend.close()

    def test_lease_telemetry_counts_per_backend(self, fleet_factory):
        from repro.engine.telemetry import TELEMETRY
        TELEMETRY.drain()
        run_sweep(_campaign().points()[:2], jobs=2,
                  backend=fleet_factory(1, store=False))
        counters = TELEMETRY.snapshot().get("counters", {})
        leased = counters.get("repro_units_leased_total", {})
        assert leased.get('backend="workers"', 0) >= 1
        TELEMETRY.drain()


class TestWorkerEvents:
    def test_json_round_trip(self):
        for event in (WorkerJoinedEvent(worker="w0", workers=1),
                      WorkerLeftEvent(worker="w0", workers=0,
                                      requeued=1),
                      UnitLeasedEvent(worker="w0",
                                      unit_kind="sweep-shard")):
            decoded = event_from_json_line(event.to_json_line())
            assert decoded == event
            assert decoded.kind == event.kind

    def test_lifecycle_events_emitted_in_order(self, fleet_factory):
        events = []
        backend = fleet_factory(1, store=False,
                                on_event=events.append)
        run_sweep(_campaign().points()[:2], jobs=2, backend=backend)
        kinds = [event.kind for event in events]
        assert kinds[0] == "worker-joined"
        assert "unit-leased" in kinds
