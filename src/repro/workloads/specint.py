"""SPECint2000 kernel stand-ins.

One kernel per SPECint benchmark in the paper's Table 1, each
reproducing the benchmark's dominant loop structure (see
``repro.workloads.common`` for the substitution rationale).  All
kernels are deterministic (LCG-generated data) and store a checksum to
memory before halting so that tests can pin their behaviour.
"""

from __future__ import annotations

from .common import Workload, lcg_step


def bzip2_source(scale: int) -> str:
    """Run-length scanning + byte histogram (bzip2's front end)."""
    count = 2000 * scale
    return f"""
.data
buf:    .space {count + 16}
hist:   .space 2048
result: .quad 0
.text
        ldi   r3, 99991
        clr   r1
        ldi   r2, {count}
        ldi   r4, buf
gen:
{lcg_step('r3', 'r5')}
        and   r6, r3, 0xff
        srl   r7, r3, 8
        and   r7, r7, 7
        add   r7, r7, 1
run:    stb   r6, 0(r4)
        lda   r4, 1(r4)
        add   r1, r1, 1
        cmplt r8, r1, r2
        beq   r8, scan
        sub   r7, r7, 1
        bne   r7, run
        br    gen
scan:
        clr   r1
        ldi   r4, buf
        ldi   r9, hist
        ldi   r10, -1
        clr   r11
        clr   r12
hloop:  ldbu  r5, 0(r4)
        s8add r6, r5, r9
        ldq   r7, 0(r6)
        add   r7, r7, 1
        stq   r7, 0(r6)
        cmpeq r8, r5, r10
        bne   r8, same
        add   r11, r11, 1
same:   mov   r10, r5
        add   r12, r12, r5
        lda   r4, 1(r4)
        add   r1, r1, 1
        cmplt r8, r1, r2
        bne   r8, hloop
        sll   r11, r11, 20
        add   r12, r12, r11
        ldi   r13, result
        stq   r12, 0(r13)
        halt
"""


def crafty_source(scale: int) -> str:
    """Bitboard manipulation: Kernighan popcounts + attack-mask mixing."""
    words = 400 * scale
    return f"""
.data
result: .quad 0
.text
        ldi   r3, 31337
        ldi   r1, {words}
        clr   r12
        clr   r13
wloop:
{lcg_step('r3', 'r5')}
        mov   r6, r3
{lcg_step('r3', 'r5')}
        sll   r7, r3, 31
        or    r6, r6, r7
        clr   r8
pop:    beq   r6, popdone
        sub   r9, r6, 1
        and   r6, r6, r9
        add   r8, r8, 1
        br    pop
popdone:
        add   r12, r12, r8
        sll   r10, r3, 6
        srl   r11, r3, 10
        or    r10, r10, r11
        xor   r13, r13, r10
        and   r13, r13, 0xffffffff
        sub   r1, r1, 1
        bne   r1, wloop
        add   r12, r12, r13
        ldi   r14, result
        stq   r12, 0(r14)
        halt
"""


def eon_source(scale: int) -> str:
    """FP ray-sphere intersection tests (eon's probabilistic ray tracer)."""
    rays = 700 * scale
    return f"""
.data
result: .quad 0
.text
        ldi   r3, 7777
        ldi   r1, {rays}
        clr   r12
        ldi   r4, 1024
        itof  f10, r4
doray:
{lcg_step('r3', 'r5')}
        and   r6, r3, 2047
        sub   r6, r6, 1024
        itof  f1, r6
{lcg_step('r3', 'r5')}
        and   r6, r3, 2047
        sub   r6, r6, 1024
        itof  f2, r6
{lcg_step('r3', 'r5')}
        and   r6, r3, 2047
        sub   r6, r6, 1024
        itof  f3, r6
        fmul  f4, f1, f1
        fmul  f5, f2, f2
        fadd  f4, f4, f5
        fmul  f5, f3, f3
        fadd  f4, f4, f5
        fmul  f6, f1, f2
        fadd  f7, f6, f6
        fadd  f7, f7, f7
        fmul  f5, f3, f3
        fsub  f8, f7, f5
        fadd  f8, f8, f10
        fcmplt f9, f8, f31
        fbne  f9, miss
        add   r12, r12, 1
miss:   sub   r1, r1, 1
        bne   r1, doray
        ldi   r14, result
        stq   r12, 0(r14)
        halt
"""


def gap_source(scale: int) -> str:
    """Multi-precision (bignum) addition loops (gap's integer kernel)."""
    rounds = 80 * scale
    limbs = 32
    return f"""
.data
biga:   .space {limbs * 8}
bigb:   .space {limbs * 8}
bigc:   .space {limbs * 8}
result: .quad 0
.text
        ldi   r3, 424242
        ldi   r1, {limbs}
        ldi   r4, biga
        ldi   r5, bigb
seed:
{lcg_step('r3', 'r6')}
        stq   r3, 0(r4)
{lcg_step('r3', 'r6')}
        stq   r3, 0(r5)
        lda   r4, 8(r4)
        lda   r5, 8(r5)
        sub   r1, r1, 1
        bne   r1, seed
        ldi   r15, {rounds}
        clr   r16
round:
        ldi   r1, {limbs}
        ldi   r4, biga
        ldi   r5, bigb
        ldi   r7, bigc
        clr   r8
limb:   ldq   r9, 0(r4)
        ldq   r10, 0(r5)
        add   r11, r9, r10
        add   r11, r11, r8
        cmpult r8, r11, r9
        stq   r11, 0(r7)
        add   r16, r16, r11
        lda   r4, 8(r4)
        lda   r5, 8(r5)
        lda   r7, 8(r7)
        sub   r1, r1, 1
        bne   r1, limb
        ldq   r9, bigc(r31)
        stq   r9, biga(r31)
        sub   r15, r15, 1
        bne   r15, round
        and   r16, r16, 0xffffffffffff
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def gcc_source(scale: int) -> str:
    """Token dispatch through a jump table (gcc's branchy core)."""
    tokens = 1200 * scale
    return f"""
.text
        br    main
h0:     add   r10, r10, 1
        br    next
h1:     xor   r10, r10, r11
        br    next
h2:     add   r11, r11, 3
        br    next
h3:     sll   r12, r10, 1
        add   r10, r12, r11
        and   r10, r10, 0xffffff
        br    next
h4:     sub   r11, r11, r10
        br    next
h5:     and   r10, r10, 0x5555
        br    next
h6:     or    r11, r11, 1
        br    next
h7:     add   r10, r10, r11
        and   r10, r10, 0xffffff
        br    next
main:   ldi   r3, 271828
        clr   r1
        ldi   r2, {tokens}
        ldi   r4, toks
fillt:
{lcg_step('r3', 'r5')}
        srl   r6, r3, 5
        and   r6, r6, 7
        stb   r6, 0(r4)
        lda   r4, 1(r4)
        add   r1, r1, 1
        cmplt r8, r1, r2
        bne   r8, fillt
        clr   r1
        ldi   r4, toks
        clr   r10
        ldi   r11, 5
        ldi   r9, jtab
disp:   ldbu  r5, 0(r4)
        s8add r7, r5, r9
        ldq   r8, 0(r7)
        jmp   r8
next:   lda   r4, 1(r4)
        add   r1, r1, 1
        cmplt r8, r1, r2
        bne   r8, disp
        ldi   r14, result
        stq   r10, 0(r14)
        halt
.data
toks:   .space {tokens + 8}
.align 8
jtab:   .quad h0, h1, h2, h3, h4, h5, h6, h7
result: .quad 0
"""


def mcf_source(scale: int) -> str:
    """The sort_basket quicksort the paper analyses in Section 5.2.

    An explicit-stack quicksort over an array larger than the MBC:
    top-level partitions thrash the bypass cache, but once sub-arrays
    fit, every access is eliminated — the paper's described behaviour.
    """
    count = 200 * scale
    return f"""
.data
arr:    .space {count * 8}
stk:    .space {count * 32 + 64}
result: .quad 0
.text
        ldi   r3, 555557
        ldi   r1, {count}
        ldi   r2, arr
fill:
{lcg_step('r3', 'r5')}
        and   r5, r3, 1023
        stq   r5, 0(r2)
        lda   r2, 8(r2)
        sub   r1, r1, 1
        bne   r1, fill
        ldi   r10, stk
        clr   r4
        ldi   r5, {count - 1}
        stq   r4, 0(r10)
        stq   r5, 8(r10)
        lda   r10, 16(r10)
qloop:  ldi   r11, stk
        cmpeq r12, r10, r11
        bne   r12, sorted
        lda   r10, -16(r10)
        ldq   r4, 0(r10)
        ldq   r5, 8(r10)
        cmplt r12, r4, r5
        beq   r12, qloop
        ldi   r13, arr
        s8add r14, r5, r13
        ldq   r15, 0(r14)
        sub   r16, r4, 1
        mov   r17, r4
part:   cmplt r12, r17, r5
        beq   r12, partdone
        s8add r18, r17, r13
        ldq   r19, 0(r18)
        cmple r12, r19, r15
        beq   r12, noswap
        add   r16, r16, 1
        s8add r20, r16, r13
        ldq   r21, 0(r20)
        stq   r19, 0(r20)
        stq   r21, 0(r18)
noswap: add   r17, r17, 1
        br    part
partdone:
        add   r16, r16, 1
        s8add r20, r16, r13
        ldq   r21, 0(r20)
        s8add r18, r5, r13
        ldq   r19, 0(r18)
        stq   r19, 0(r20)
        stq   r21, 0(r18)
        sub   r22, r16, 1
        stq   r4, 0(r10)
        stq   r22, 8(r10)
        lda   r10, 16(r10)
        add   r22, r16, 1
        stq   r22, 0(r10)
        stq   r5, 8(r10)
        lda   r10, 16(r10)
        br    qloop
sorted:
        ldi   r1, {count}
        ldi   r2, arr
        clr   r7
        clr   r8
chk:    ldq   r5, 0(r2)
        cmple r6, r8, r5
        add   r7, r7, r6
        mov   r8, r5
        lda   r2, 8(r2)
        sub   r1, r1, 1
        bne   r1, chk
        ldi   r14, result
        stq   r7, 0(r14)
        halt
"""


def perlbmk_source(scale: int) -> str:
    """String hashing into a chained hash table (perl's hot loop)."""
    strings = 250 * scale
    return f"""
.data
sbuf:   .space 32
htab:   .space 2048
result: .quad 0
.text
        ldi   r3, 888887
        ldi   r15, {strings}
        clr   r16
str:
{lcg_step('r3', 'r5')}
        and   r17, r3, 15
        add   r17, r17, 8
        ldi   r4, sbuf
        mov   r1, r17
mkstr:
{lcg_step('r3', 'r5')}
        and   r6, r3, 0x7f
        stb   r6, 0(r4)
        lda   r4, 1(r4)
        sub   r1, r1, 1
        bne   r1, mkstr
        ldi   r4, sbuf
        ldi   r7, 5381
        mov   r1, r17
hash:   ldbu  r6, 0(r4)
        sll   r8, r7, 5
        add   r7, r8, r7
        add   r7, r7, r6
        and   r7, r7, 0xffffffff
        lda   r4, 1(r4)
        sub   r1, r1, 1
        bne   r1, hash
        and   r9, r7, 255
        ldi   r10, htab
        s8add r11, r9, r10
        ldq   r12, 0(r11)
        add   r12, r12, 1
        stq   r12, 0(r11)
        add   r16, r16, r7
        sub   r15, r15, 1
        bne   r15, str
        and   r16, r16, 0xffffffffff
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def twolf_source(scale: int) -> str:
    """Annealing-style cell swaps with cost deltas (twolf's inner loop)."""
    moves = 1100 * scale
    cells = 128
    return f"""
.data
pos:    .space {cells * 8}
result: .quad 0
.text
        ldi   r3, 161803
        ldi   r1, {cells}
        ldi   r2, pos
seedp:
{lcg_step('r3', 'r5')}
        and   r5, r3, 4095
        stq   r5, 0(r2)
        lda   r2, 8(r2)
        sub   r1, r1, 1
        bne   r1, seedp
        ldi   r15, {moves}
        clr   r16
        ldi   r13, pos
move:
{lcg_step('r3', 'r5')}
        and   r6, r3, {cells - 1}
{lcg_step('r3', 'r5')}
        and   r7, r3, {cells - 1}
        s8add r8, r6, r13
        s8add r9, r7, r13
        ldq   r10, 0(r8)
        ldq   r11, 0(r9)
        sub   r12, r10, r11
        bge   r12, posd
        sub   r12, r31, r12
posd:   and   r14, r3, 3
        bne   r14, nswp
        stq   r11, 0(r8)
        stq   r10, 0(r9)
nswp:   add   r16, r16, r12
        sub   r15, r15, 1
        bne   r15, move
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def vortex_source(scale: int) -> str:
    """Linked object-record traversal with field updates (vortex)."""
    steps = 1800 * scale
    records = 256
    return f"""
.data
recs:   .space {records * 32}
result: .quad 0
.text
        ldi   r3, 314159
        ldi   r1, {records}
        ldi   r2, recs
seedr:
{lcg_step('r3', 'r5')}
        and   r5, r3, 0xffff
        stq   r5, 0(r2)
{lcg_step('r3', 'r5')}
        and   r5, r3, {records - 1}
        stq   r5, 8(r2)
{lcg_step('r3', 'r5')}
        and   r5, r3, 0xff
        stq   r5, 16(r2)
        stq   r31, 24(r2)
        lda   r2, 32(r2)
        sub   r1, r1, 1
        bne   r1, seedr
        ldi   r15, {steps}
        clr   r16
        clr   r6
        ldi   r13, recs
walk:   sll   r7, r6, 5
        add   r7, r7, r13
        ldq   r8, 0(r7)
        ldq   r9, 8(r7)
        ldq   r10, 16(r7)
        add   r16, r16, r8
        add   r11, r10, 1
        stq   r11, 16(r7)
        add   r6, r9, r11
        and   r6, r6, {records - 1}
        sub   r15, r15, 1
        bne   r15, walk
        and   r16, r16, 0xffffffffff
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def vpr_source(scale: int) -> str:
    """Grid placement-cost evaluation (vpr's route-cost loop)."""
    moves = 1300 * scale
    dim = 32
    return f"""
.data
grid:   .space {dim * dim * 8}
result: .quad 0
.text
        ldi   r3, 654321
        ldi   r1, {dim * dim}
        ldi   r2, grid
seedg:
{lcg_step('r3', 'r5')}
        and   r5, r3, 255
        stq   r5, 0(r2)
        lda   r2, 8(r2)
        sub   r1, r1, 1
        bne   r1, seedg
        ldi   r15, {moves}
        clr   r16
        ldi   r13, grid
cost:
{lcg_step('r3', 'r5')}
        and   r6, r3, {dim - 2}
        add   r6, r6, 1
{lcg_step('r3', 'r5')}
        and   r7, r3, {dim - 2}
        add   r7, r7, 1
        sll   r8, r6, {dim.bit_length() - 1}
        add   r8, r8, r7
        s8add r9, r8, r13
        ldq   r10, 0(r9)
        ldq   r11, 8(r9)
        ldq   r12, -8(r9)
        add   r11, r11, r12
        ldq   r12, {dim * 8}(r9)
        add   r11, r11, r12
        ldq   r12, {-dim * 8}(r9)
        add   r11, r11, r12
        sra   r11, r11, 2
        sub   r12, r10, r11
        bge   r12, vposd
        sub   r12, r31, r12
vposd:  add   r16, r16, r12
        stq   r11, 0(r9)
        sub   r15, r15, 1
        bne   r15, cost
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


WORKLOADS = [
    Workload("bzip2", "bzp", "SPECint",
             "run-length scan + byte histogram", bzip2_source),
    Workload("crafty", "cra", "SPECint",
             "bitboard popcounts and mask mixing", crafty_source),
    Workload("eon", "eon", "SPECint",
             "FP ray-sphere intersection tests", eon_source),
    Workload("gap", "gap", "SPECint",
             "multi-precision addition", gap_source),
    Workload("gcc", "gcc", "SPECint",
             "token dispatch through a jump table", gcc_source),
    Workload("mcf", "mcf", "SPECint",
             "sort_basket quicksort (Section 5.2)", mcf_source),
    Workload("perlbmk", "prl", "SPECint",
             "string hashing into a hash table", perlbmk_source),
    Workload("twolf", "twf", "SPECint",
             "annealing cell swaps with cost deltas", twolf_source),
    Workload("vortex", "vor", "SPECint",
             "linked record traversal with updates", vortex_source),
    Workload("vpr", "vpr", "SPECint",
             "grid placement-cost evaluation", vpr_source),
]
