"""Differential correctness harness tests (``repro fuzz`` internals).

Three independent executions of every program must agree: the
functional emulator, optimizer-on/off pipeline retirement, and
segmented simulation.  These tests cover the :class:`ArchState`
retirement replay, each differential check (including seeded fuzzing
over every synthetic family and a couple of paper kernels), the
harness's ability to *detect* disagreement (a harness that can never
fail verifies nothing), and the CLI entry point.
"""

import pytest

from repro.cli import main
from repro.engine.differential import (Check, FuzzReport, ProgramReport,
                                       check_workload, format_report,
                                       run_fuzz)
from repro.functional.emulator import ArchState, run_program
from repro.uarch.config import default_config, optimized_config
from repro.uarch.pipeline import make_pipeline
from repro.workloads import build_program
from repro.workloads.synth import FAMILIES


class TestArchState:
    def test_replaying_full_trace_reaches_emulator_state(self):
        program = build_program("synth:mixed@seed=2")
        result = run_program(program)
        arch = ArchState(program)
        for entry in result.trace:
            arch.apply(entry)
        assert arch.state_dict() == result.state_dict()
        assert arch.applied == len(result.trace)

    def test_partial_replay_diverges(self):
        program = build_program("synth:ilp@seed=0")
        result = run_program(program)
        arch = ArchState(program)
        for entry in result.trace[:-20]:
            arch.apply(entry)
        assert arch.state_dict() != result.state_dict()

    def test_pipeline_feeds_retired_entries(self):
        program = build_program("synth:stream@seed=1")
        result = run_program(program)
        arch = ArchState(program)
        stats = make_pipeline(result.trace, optimized_config(),
                              arch_state=arch).run()
        assert stats.retired == len(result.trace)
        assert arch.applied == len(result.trace)
        assert arch.state_dict() == result.state_dict()

    def test_fp_state_compares_by_bits(self):
        program = build_program("equake")
        result = run_program(program)
        arch = ArchState(program)
        for entry in result.trace:
            arch.apply(entry)
        state = arch.state_dict()
        assert state == result.state_dict()
        assert any(state["fp_bits"])  # equake actually uses FP


class TestCheckWorkload:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_passes_all_checks(self, family):
        report = check_workload(f"synth:{family}@seed=0")
        assert report.ok, [c.detail for c in report.failures]
        assert [c.name for c in report.checks] == [
            "emulator-vs-pipeline", "optimizer-on-vs-off",
            "segmented-vs-monolithic"]

    def test_paper_kernels_pass(self):
        for name in ("mcf", "untoast"):
            report = check_workload(name)
            assert report.ok, (name,
                               [c.detail for c in report.failures])

    def test_degenerate_empty_program_passes(self):
        report = check_workload("synth:branchy@seed=0,iters=0")
        assert report.ok
        assert report.instructions == 0

    def test_abbreviations_canonicalize(self):
        report = check_workload("untst")
        assert report.workload == "untoast"

    def test_report_serializes(self):
        report = check_workload("synth:ilp@seed=1")
        data = report.to_dict()
        assert data["ok"] is True
        assert len(data["checks"]) == 3


class TestHarnessCanFail:
    """A differential harness must be able to detect disagreement."""

    def test_broken_optimizer_is_caught(self, monkeypatch):
        # Corrupt the CP/RA transform's early-executed ADD results by
        # one: the oracle trace stays correct, so the optimizer now
        # fabricates values and the harness must report it (the strict
        # verifier raises, which the harness records as a finding).
        from repro.core import cpra, symbolic
        from repro.isa.opcodes import Opcode

        real = cpra.transform

        def corrupt(opcode, srcs):
            outcome = real(opcode, srcs)
            if (opcode is Opcode.ADD and outcome.is_early
                    and outcome.value is not None):
                return outcome._replace(
                    value=outcome.value + 1,
                    sym=symbolic.const(outcome.value + 1))
            return outcome

        monkeypatch.setattr(cpra, "transform", corrupt)
        report = check_workload("synth:ilp@seed=0")
        assert not report.ok
        failed = {c.name for c in report.failures}
        assert "emulator-vs-pipeline" in failed
        detail = next(c.detail for c in report.failures
                      if c.name == "emulator-vs-pipeline")
        assert "VerificationError" in detail

    def test_emulation_crash_is_a_finding_not_an_abort(self):
        # A blown instruction budget (or any emulator-side crash) must
        # land in the report so a fuzz sweep surveys the other seeds.
        report = check_workload("synth:ilp@seed=0", max_instructions=10)
        assert not report.ok
        assert [c.name for c in report.checks] == ["emulation"]
        assert "EmulationLimit" in report.checks[0].detail

    def test_dropped_retirement_is_caught(self):
        # Simulate a pipeline that silently drops the last entries.
        program = build_program("synth:ilp@seed=0")
        result = run_program(program)
        arch = ArchState(program)
        make_pipeline(result.trace[:-50], default_config(),
                      arch_state=arch).run()
        assert arch.state_dict() != result.state_dict()


class TestRunFuzz:
    def test_small_budget_sweep_over_all_families(self):
        events = []
        fuzz = run_fuzz(range(0, 2), small=True, progress=events.append)
        assert fuzz.ok
        assert len(fuzz.programs) == 2 * len(FAMILIES)
        assert all(e.kind == "finding" and e.ok and not e.failures
                   for e in events)
        assert (events[-1].done, events[-1].total) == \
            (len(fuzz.programs), len(fuzz.programs))
        assert "0 failed" in format_report(fuzz)

    def test_family_subset(self):
        fuzz = run_fuzz(range(0, 1), families=("ilp",), small=True)
        assert len(fuzz.programs) == 1
        assert fuzz.programs[0].workload.startswith("synth:ilp@")

    def test_report_aggregates_failures(self):
        fuzz = FuzzReport(programs=[
            ProgramReport(workload="a", scale=1,
                          checks=[Check("x", True)]),
            ProgramReport(workload="b", scale=1,
                          checks=[Check("y", False, "boom")]),
        ])
        assert not fuzz.ok
        assert len(fuzz.failed) == 1
        text = format_report(fuzz)
        assert "FAIL b@1 y: boom" in text
        assert fuzz.to_dict()["failed"] == 1


class TestFuzzCli:
    def test_fuzz_command_passes(self, capsys):
        assert main(["fuzz", "--budget-small", "--seeds", "0:1",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_fuzz_json_report(self, capsys):
        import json
        assert main(["fuzz", "--budget-small", "--seeds", "1",
                     "--families", "ilp", "--quiet", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["programs"] == 1

    def test_fuzz_progress_lines(self, capsys):
        assert main(["fuzz", "--budget-small", "--seeds", "0:1",
                     "--families", "mixed"]) == 0
        err = capsys.readouterr().err
        assert "[1/1]" in err and "ok" in err

    def test_bad_seed_range_is_usage_error(self, capsys):
        assert main(["fuzz", "--seeds", "5:5"]) == 2
        assert main(["fuzz", "--seeds", "abc"]) == 2
        err = capsys.readouterr().err
        assert "repro fuzz: error" in err

    def test_unknown_family_is_usage_error(self, capsys):
        assert main(["fuzz", "--families", "quantum"]) == 2
        assert "quantum" in capsys.readouterr().err
