"""Dynamic (in-flight) instruction state for the timing model.

A :class:`DynInstr` wraps one oracle :class:`~repro.functional.emulator.
TraceEntry` with everything the pipeline tracks about it: physical
register operands after rename/optimization, scheduler class, readiness
bookkeeping, the optimizer outcome flags (early execution, removed
load, known address), and the cycle timestamps used to compute
latencies.
"""

from __future__ import annotations

from ..functional.emulator import TraceEntry
from ..isa.opcodes import OpClass


class DynInstr:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "entry", "seq",
        "sched_class", "src_pregs", "dst_preg", "prev_preg",
        "deps_remaining", "store_dep",
        "early", "early_value", "removed_load", "addr_known",
        "mispredicted", "early_resolved", "btb_bubble", "misspec_flush",
        "fetch_cycle", "rename_cycle", "issue_cycle", "complete_cycle",
        "completed", "retired", "exec_latency",
    )

    def __init__(self, entry: TraceEntry, fetch_cycle: int):
        self.entry = entry
        self.seq = entry.seq
        self.sched_class: OpClass = entry.instr.spec.op_class
        self.src_pregs: tuple[int, ...] = ()
        self.dst_preg: int | None = None
        self.prev_preg: int | None = None
        self.deps_remaining = 0
        self.store_dep: "DynInstr | None" = None
        self.early = False
        self.early_value: int | None = None
        self.removed_load = False
        self.addr_known = False
        self.mispredicted = False
        self.early_resolved = False
        self.btb_bubble = False
        self.misspec_flush = False
        self.fetch_cycle = fetch_cycle
        self.rename_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.completed = False
        self.retired = False
        self.exec_latency = 0

    @property
    def instr(self):
        return self.entry.instr

    @property
    def opcode(self):
        return self.entry.instr.opcode

    @property
    def is_load(self) -> bool:
        return self.entry.is_load

    @property
    def is_store(self) -> bool:
        return self.entry.is_store

    @property
    def is_control(self) -> bool:
        return self.entry.is_control

    def __repr__(self) -> str:
        flags = []
        if self.early:
            flags.append("early")
        if self.removed_load:
            flags.append("rle")
        if self.mispredicted:
            flags.append("mispred")
        flag_text = f" [{','.join(flags)}]" if flags else ""
        return (f"DynInstr(#{self.seq} pc={self.entry.pc:#x} "
                f"{self.entry.instr}{flag_text})")
