"""Functional simulation: opcode semantics, memory, architectural emulator.

The functional layer is the oracle for the whole reproduction: it
executes programs architecturally and produces dynamic traces with true
values, addresses, and branch outcomes.  The cycle-level timing model
and the continuous optimizer both consume these traces.
"""

from . import alu
from .emulator import (Checkpoint, EmulationError, EmulationLimit,
                       EmulationResult, Emulator, PackedTrace, TraceEntry,
                       run_program)
from .memory import Memory

__all__ = [
    "alu",
    "Checkpoint", "EmulationError", "EmulationLimit", "EmulationResult",
    "Emulator", "PackedTrace", "TraceEntry", "run_program",
    "Memory",
]
