"""Tests for the 22 workload kernels (paper Table 1).

Every kernel must assemble, run to completion deterministically, and
exhibit the instruction-mix character its benchmark stands in for.
"""

import pytest

from repro.functional import run_program
from repro.isa.opcodes import OpClass
from repro.workloads import (ALL_WORKLOADS, SUITES, build_program,
                             build_trace, get_workload, suite_workloads)

ALL_NAMES = [w.name for w in ALL_WORKLOADS]


class TestRegistry:
    def test_twenty_two_workloads(self):
        assert len(ALL_WORKLOADS) == 22

    def test_suite_sizes_match_table1(self):
        assert len(suite_workloads("SPECint")) == 10
        assert len(suite_workloads("SPECfp")) == 6
        assert len(suite_workloads("mediabench")) == 6

    def test_lookup_by_name_and_abbrev(self):
        assert get_workload("mcf").name == "mcf"
        assert get_workload("untst").name == "untoast"

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            get_workload("doom3")
        with pytest.raises(KeyError):
            suite_workloads("SPECjbb")

    def test_names_unique(self):
        assert len(set(ALL_NAMES)) == 22
        abbrevs = [w.abbrev for w in ALL_WORKLOADS]
        assert len(set(abbrevs)) == 22

    def test_suites_cover_all(self):
        assert {w.suite for w in ALL_WORKLOADS} == set(SUITES)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            get_workload("mcf").source(0)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryKernel:
    def test_assembles(self, name):
        program = build_program(name)
        assert program.static_count() > 10

    def test_runs_to_completion(self, name):
        result = build_trace(name)
        assert result.halted
        assert 3_000 < result.instruction_count < 200_000

    def test_deterministic(self, name):
        first = build_trace(name)
        second = build_trace(name)
        assert first.instruction_count == second.instruction_count
        addr = build_program(name).labels["result"]
        assert (first.memory.load(addr, 8, signed=False)
                == second.memory.load(addr, 8, signed=False))

    def test_writes_nonzero_checksum(self, name):
        result = build_trace(name)
        addr = build_program(name).labels["result"]
        assert result.memory.load(addr, 8, signed=False) != 0

    def test_scale_grows_instruction_count(self, name):
        small = build_trace(name, scale=1).instruction_count
        large = build_trace(name, scale=2).instruction_count
        assert large > small


class TestInstructionMixes:
    def _mix(self, name):
        trace = build_trace(name).trace
        counts = {"mem": 0, "fp": 0, "branch": 0, "total": len(trace)}
        for entry in trace:
            spec = entry.instr.spec
            if spec.is_load or spec.is_store:
                counts["mem"] += 1
            if spec.op_class is OpClass.FP:
                counts["fp"] += 1
            if spec.is_branch or spec.is_jump:
                counts["branch"] += 1
        return counts

    def test_specfp_kernels_use_fp(self):
        for workload in suite_workloads("SPECfp"):
            mix = self._mix(workload.name)
            assert mix["fp"] / mix["total"] > 0.10, workload.name

    def test_specint_kernels_mostly_integer(self):
        for workload in suite_workloads("SPECint"):
            if workload.name == "eon":
                continue  # eon is the FP-flavoured SPECint benchmark
            mix = self._mix(workload.name)
            assert mix["fp"] / mix["total"] < 0.05, workload.name

    def test_all_kernels_have_branches(self):
        for workload in ALL_WORKLOADS:
            mix = self._mix(workload.name)
            assert mix["branch"] / mix["total"] > 0.05, workload.name

    def test_memory_intensity_of_mcf(self):
        mix = self._mix("mcf")
        assert mix["mem"] / mix["total"] > 0.2

    def test_untoast_touches_small_arrays(self):
        # untoast's working set must fit the 128-entry MBC (Section 5.2).
        result = build_trace("untoast")
        addresses = {e.addr & ~7 for e in result.trace
                     if e.addr is not None}
        assert len(addresses) < 128


class TestMcfSortsCorrectly:
    def test_quicksort_produces_sorted_array(self):
        program = build_program("mcf")
        result = run_program(program)
        base = program.labels["arr"]
        values = [result.memory.load(base + 8 * i, 8) for i in range(200)]
        assert values == sorted(values)
