"""Table 3: effects of continuous optimization.

Per-suite averages of the four effect metrics the paper reports:

* *exec. early* — % of the instruction stream executed in the optimizer
  (paper: SPECint 20.0, SPECfp 28.6, mediabench 33.5, avg 26.0)
* *recov. mispred. brs.* — % of mispredicted branches resolved at
  rename (paper: 10.5 / 17.5 / 13.5 / 12.2)
* *ld/st addr. gen.* — % of memory operations whose addresses were
  generated in the optimizer (paper: 56.2 / 71.2 / 84 / 65.3)
* *lds removed* — % of loads converted into moves by RLE/SF
  (paper: 5.5 / 21.7 / 47.2 / 17.4)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import prewarm, run_workload, suite_lists

#: The paper's Table 3 values, for side-by-side reporting.
PAPER_TABLE3 = {
    "SPECint": (20.0, 10.5, 56.2, 5.5),
    "SPECfp": (28.6, 17.5, 71.2, 21.7),
    "mediabench": (33.5, 13.5, 84.0, 47.2),
    "avg": (26.0, 12.2, 65.3, 17.4),
}


@dataclass(frozen=True)
class Table3Row:
    """One suite's (or the overall) effect averages, in percent."""

    suite: str
    exec_early: float
    recovered_mispredicts: float
    addr_generated: float
    loads_removed: float


def run(scale: int = 1, jobs: int | None = None,
        workloads_per_suite: int | None = None) -> list[Table3Row]:
    """Measure Table 3 across the full workload.

    ``workloads_per_suite`` bounds each suite to its first N kernels
    (the benchmark harness's ``--smoke`` budget).
    """
    opt_cfg = default_config().with_optimizer()
    lists = suite_lists(workloads_per_suite)
    names = [w.name for suite in SUITES for w in lists[suite]]
    prewarm(names, [opt_cfg], scale, jobs)
    rows: list[Table3Row] = []
    all_metrics: list[tuple[float, float, float, float]] = []
    for suite in SUITES:
        metrics = []
        for workload in lists[suite]:
            stats = run_workload(workload.name, opt_cfg, scale)
            metrics.append((100 * stats.frac_early_executed,
                            100 * stats.frac_mispredicts_recovered,
                            100 * stats.frac_mem_addr_gen,
                            100 * stats.frac_loads_removed))
        all_metrics.extend(metrics)
        rows.append(_average_row(suite, metrics))
    rows.append(_average_row("avg", all_metrics))
    return rows


def _average_row(suite: str,
                 metrics: list[tuple[float, float, float, float]]
                 ) -> Table3Row:
    count = len(metrics)
    sums = [sum(m[i] for m in metrics) for i in range(4)]
    return Table3Row(suite=suite,
                     exec_early=sums[0] / count,
                     recovered_mispredicts=sums[1] / count,
                     addr_generated=sums[2] / count,
                     loads_removed=sums[3] / count)


def format(rows: list[Table3Row]) -> str:
    """Render measured-vs-paper Table 3."""
    table_rows = []
    for row in rows:
        paper = PAPER_TABLE3.get(row.suite)
        table_rows.append([
            row.suite,
            f"{row.exec_early:.1f} ({paper[0]})",
            f"{row.recovered_mispredicts:.1f} ({paper[1]})",
            f"{row.addr_generated:.1f} ({paper[2]})",
            f"{row.loads_removed:.1f} ({paper[3]})",
        ])
    return format_table(
        "Table 3: effects of continuous optimization — measured (paper), %",
        ["suite", "exec early", "recov mispred brs",
         "ld/st addr gen", "lds removed"],
        table_rows)
