"""Pluggable execution backends: one dispatch layer for every planner.

Before this module each engine carried its own hand-rolled dispatch
loop over a local ``ProcessPoolExecutor`` — flat sweeps in ``pool.py``,
the segmented pipeline in ``segments.py``, candidate batches in
``search.py``, and a serial-only loop in ``differential.py``.  Four
divergent paths, and no seam where anything but a local process pool
could plug in.

Now every planner emits :class:`WorkUnit`\\ s — self-describing shards
(an executor *kind* plus a picklable payload: workload specs, configs,
segment indices, simulation limits) — into a :class:`UnitGroup`
obtained from an :class:`ExecutionBackend`, and merges results by
ticket.  Three backends implement the protocol:

``InlineBackend``
    Executes each unit eagerly at submit time in the calling process —
    zero processes, completion order equals submission order.  This is
    the old scattered ``jobs == 1`` special case, once.
``PoolBackend``
    Wraps today's ``ProcessPoolExecutor`` plus the ``workers.py``
    start-method/queue-wait scaffolding.  Worker processes drain their
    telemetry into each result; the driver merges it on receipt.
``SocketWorkerBackend``
    A lease server: ``repro worker --connect host:port`` processes
    register, lease units, execute them against a **local store
    replica**, and sync artifacts by content hash through the
    content-addressed store (replication is just "fetch missing
    hashes").  A worker that drops mid-unit has its lease requeued for
    the next worker.

Backends only choose the execution *mechanism*; ``jobs`` remains the
planning knob (pool sizing, adaptive segment sizing).  The determinism
contract therefore extends across backends: the same grid at the same
``jobs`` produces byte-identical exact-mode ledgers on any backend
with any worker count, because planners absorb results by index and
plans never depend on who executed a unit.

The socket protocol is length-prefixed pickle frames between trusted
processes.  **Pickle is code execution**: bind the lease server to
loopback (the default) or an interface only your own workers reach.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue
import socket
import struct
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                wait)
from typing import Callable

from dataclasses import dataclass

from .store import ArtifactStore, PICKLE_PROTOCOL
from .telemetry import TELEMETRY
from .workers import observe_wait, pool_kwargs

#: Valid ``--backend`` spellings (``resolve_backend`` specs).
BACKEND_NAMES = ("inline", "pool", "workers")

#: Bumped when the worker lease protocol changes shape; a worker and
#: server disagreeing on it refuse each other instead of mis-parsing.
PROTOCOL_VERSION = 1

#: 8-byte big-endian frame length prefix.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames before allocating for them (a stray client
#: speaking HTTP to the lease port reads as a huge bogus length).
MAX_FRAME_BYTES = 1 << 31

#: How long a waiting ``wait_any`` goes between no-worker warnings.
_IDLE_WARN_SECONDS = 10.0


# ----------------------------------------------------------------------
# work units and their executors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkUnit:
    """One self-describing shard of engine work.

    ``kind`` names a registered executor (``sweep-shard``,
    ``seg-window``, ``fuzz-check``, ...); ``payload`` is that
    executor's picklable argument tuple — workload spec, config(s),
    segment index / policy token, simulation limit, whatever the kind
    needs.  Store artifacts are addressed *inside* executors through
    the execution environment's store binding, so the same unit runs
    unchanged inline, on a pool worker, or on a remote socket worker
    holding a store replica.

    ``phase`` labels the queue-wait histogram
    (``repro_pool_shard_wait_seconds{phase=}``) the way the segmented
    engine's plan/simulate stages always did.
    """

    kind: str
    payload: tuple
    phase: str | None = None


#: kind -> executor ``fn(payload, env) -> result``.
_EXECUTORS: dict[str, Callable] = {}
_EXECUTOR_MODULES_LOADED = False


def register_executor(kind: str):
    """Class-of-work registration decorator for unit executors."""
    def decorate(fn):
        _EXECUTORS[kind] = fn
        return fn
    return decorate


def _load_executor_modules() -> None:
    """Import every module that registers executors.

    Worker processes (pool initializers, ``repro worker``) execute
    units without having imported the planners first; the registry
    self-populates on first dispatch.
    """
    global _EXECUTOR_MODULES_LOADED
    if _EXECUTOR_MODULES_LOADED:
        return
    from . import differential, pool, segments  # noqa: F401
    _EXECUTOR_MODULES_LOADED = True


def execute_unit(unit: WorkUnit, env: "ExecutionEnv"):
    """Run one unit against an execution environment."""
    fn = _EXECUTORS.get(unit.kind)
    if fn is None:
        _load_executor_modules()
        fn = _EXECUTORS.get(unit.kind)
    if fn is None:
        raise ValueError(f"unknown work unit kind {unit.kind!r}; "
                         f"registered: {sorted(_EXECUTORS)}")
    return fn(unit.payload, env)


class ExecutionEnv:
    """What a unit executor runs against: a store binding + scratch.

    ``scratch`` is a dict whose lifetime is the executing worker's —
    executors cache expensive per-worker state there (the sweep
    executor keeps its bounded-LRU ``ExecutionContext``), so repeated
    units on one worker reuse traces exactly like the old per-process
    globals did.
    """

    def __init__(self, store_dir: str | os.PathLike | None = None):
        self.store_dir = (os.fspath(store_dir)
                          if store_dir is not None else None)
        self.scratch: dict = {}
        self._store: ArtifactStore | None = None

    @property
    def store(self) -> ArtifactStore | None:
        if self._store is None and self.store_dir is not None:
            self._store = ArtifactStore(self.store_dir)
        return self._store


class _UnitFailure:
    """A remote unit's exception, shipped home as data."""

    def __init__(self, error: str):
        self.error = error


def _count_lease(backend_name: str) -> None:
    TELEMETRY.counter("repro_units_leased_total",
                      backend=backend_name).inc()


# ----------------------------------------------------------------------
# the protocol every planner codes against
# ----------------------------------------------------------------------

class UnitGroup:
    """One planner run's private submit/await window onto a backend.

    Planners never share tickets: a group only ever returns results
    for units it submitted, so several planner runs (the service's
    concurrent jobs) can safely share one live backend.

    * ``submit(unit) -> ticket``
    * ``wait_any() -> (ticket, result)`` — any completed unit of this
      group; raises the unit's exception if it failed
    * ``pending`` — units submitted but not yet returned
    """

    def submit(self, unit: WorkUnit) -> int:
        raise NotImplementedError

    def wait_any(self) -> tuple[int, object]:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        raise NotImplementedError


class ExecutionBackend:
    """The backend protocol: named, sized, group-scoped execution."""

    #: ``inline`` / ``pool`` / ``workers`` — telemetry label + CLI name.
    name = "backend"

    #: How parallel a *plan* should be: 1 means planners take their
    #: fused serial paths; anything larger means emit-units paths.
    parallelism = 1

    def group(self) -> UnitGroup:
        raise NotImplementedError

    def close(self) -> None:
        """Release processes/sockets.  Owned backends are closed by
        the planner that resolved them; shared instances by whoever
        constructed them."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# inline: serial, zero-process
# ----------------------------------------------------------------------

class _InlineGroup(UnitGroup):
    def __init__(self, env: ExecutionEnv):
        self.env = env
        self._ready: deque[tuple[int, object]] = deque()
        self._next_ticket = 0

    def submit(self, unit: WorkUnit) -> int:
        ticket = self._next_ticket
        self._next_ticket += 1
        _count_lease("inline")
        # eager execution: completion order IS submission order, which
        # makes the inline backend trivially deterministic
        self._ready.append((ticket, execute_unit(unit, self.env)))
        return ticket

    def wait_any(self) -> tuple[int, object]:
        if not self._ready:
            raise RuntimeError("wait_any() with no pending units")
        return self._ready.popleft()

    @property
    def pending(self) -> int:
        return len(self._ready)


class InlineBackend(ExecutionBackend):
    """Serial in-process execution — the unified ``jobs=1`` path.

    Each group gets a private :class:`ExecutionEnv`, so two
    interleaved serial sweeps (the streaming service's normal mode)
    keep their stores, trace caches, and counters disjoint — exactly
    the guarantee the old per-generator ``ExecutionContext`` gave.
    """

    name = "inline"
    parallelism = 1

    def __init__(self, store_dir: str | os.PathLike | None = None):
        self.store_dir = (os.fspath(store_dir)
                          if store_dir is not None else None)

    def group(self) -> UnitGroup:
        return _InlineGroup(ExecutionEnv(self.store_dir))


# ----------------------------------------------------------------------
# pool: local process workers
# ----------------------------------------------------------------------

#: One environment per pool worker *process* (set by the initializer).
_WORKER_ENV: ExecutionEnv | None = None


def _init_unit_worker(store_dir: str | None) -> None:
    """Pool initializer: bind this worker process to one environment."""
    global _WORKER_ENV
    _WORKER_ENV = ExecutionEnv(store_dir)


def _execute_unit_pooled(unit: WorkUnit, submitted_ns: int | None
                         ) -> tuple[object, dict | None]:
    """One unit on a pool worker; ships the telemetry snapshot home."""
    observe_wait(submitted_ns, unit.phase)
    result = execute_unit(unit, _WORKER_ENV)
    return result, TELEMETRY.drain()


class _PoolGroup(UnitGroup):
    def __init__(self, backend: "PoolBackend"):
        self._backend = backend
        self._futures: dict = {}  # future -> ticket

    def submit(self, unit: WorkUnit) -> int:
        ticket = self._backend._next_ticket()
        _count_lease("pool")
        self._futures[self._backend._submit(unit)] = ticket
        return ticket

    def wait_any(self) -> tuple[int, object]:
        if not self._futures:
            raise RuntimeError("wait_any() with no pending units")
        done, _ = wait(list(self._futures),
                       return_when=FIRST_COMPLETED)
        future = done.pop()
        ticket = self._futures.pop(future)
        result, snapshot = future.result()
        TELEMETRY.merge(snapshot)
        return ticket, result

    @property
    def pending(self) -> int:
        return len(self._futures)


class PoolBackend(ExecutionBackend):
    """Local ``ProcessPoolExecutor`` workers behind the unit protocol.

    The pool is created lazily on first submit (a resolved-but-unused
    backend costs nothing) and shared by every group, so one long
    planner run (a search's many candidate batches) reuses warm worker
    processes instead of re-forking per batch.
    """

    name = "pool"

    def __init__(self, jobs: int, store_dir: str | os.PathLike | None
                 = None, max_workers: int | None = None):
        jobs = max(1, jobs if jobs and jobs > 0 else (os.cpu_count() or 1))
        self.jobs = jobs
        self.store_dir = (os.fspath(store_dir)
                          if store_dir is not None else None)
        self._max_workers = max(1, min(jobs, max_workers or jobs))
        self._pool: ProcessPoolExecutor | None = None
        self._tickets = itertools.count()
        self._lock = threading.Lock()

    @property
    def parallelism(self) -> int:
        return self._max_workers

    def _next_ticket(self) -> int:
        return next(self._tickets)

    def _submit(self, unit: WorkUnit):
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    initializer=_init_unit_worker,
                    initargs=(self.store_dir,),
                    **pool_kwargs())
            return self._pool.submit(_execute_unit_pooled, unit,
                                     time.monotonic_ns())

    def group(self) -> UnitGroup:
        return _PoolGroup(self)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # abandoned planner runs (an early break, a cancelled
            # service job) must not execute the rest of the queue:
            # running units finish, queued units are cancelled
            pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# socket workers: a lease server + remote store replication
# ----------------------------------------------------------------------

def parse_host_port(spec: str, default_host: str = "127.0.0.1"
                    ) -> tuple[str, int]:
    """``host:port`` / ``:port`` / bare ``port`` -> ``(host, port)``."""
    text = str(spec).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    host = host or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad worker address {spec!r}: expected "
                         f"host:port") from None
    if not 0 < port < 65536:
        raise ValueError(f"bad worker port {port} in {spec!r}")
    return host, port


def _send_frame(conn: socket.socket, message: dict) -> None:
    payload = pickle.dumps(message, protocol=PICKLE_PROTOCOL)
    conn.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, count: int) -> bytes | None:
    """Exactly *count* bytes, ``None`` on clean EOF at a frame edge."""
    chunks = b""
    while len(chunks) < count:
        chunk = conn.recv(count - len(chunks))
        if not chunk:
            if chunks:
                raise ConnectionError("connection dropped mid-frame")
            return None
        chunks += chunk
    return chunks


def _recv_frame(conn: socket.socket) -> dict | None:
    header = _recv_exact(conn, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"refusing {length}-byte frame "
                              f"(not a repro worker peer?)")
    payload = _recv_exact(conn, length)
    if payload is None:
        raise ConnectionError("connection dropped mid-frame")
    return pickle.loads(payload)


class _SocketGroup(UnitGroup):
    def __init__(self, backend: "SocketWorkerBackend"):
        self._backend = backend
        self._results: queue.Queue = queue.Queue()
        self._pending = 0
        self._warned = False

    def submit(self, unit: WorkUnit) -> int:
        ticket = self._backend._enqueue(unit, self)
        self._pending += 1
        return ticket

    def wait_any(self) -> tuple[int, object]:
        if self._pending <= 0:
            raise RuntimeError("wait_any() with no pending units")
        while True:
            try:
                ticket, outcome = self._results.get(
                    timeout=_IDLE_WARN_SECONDS)
                break
            except queue.Empty:
                if not self._backend.worker_count() and not self._warned:
                    self._warned = True
                    print(f"repro: waiting for workers on "
                          f"{self._backend.host}:{self._backend.port} "
                          f"(start one with: repro worker --connect "
                          f"{self._backend.host}:{self._backend.port})",
                          file=sys.stderr, flush=True)
        self._pending -= 1
        if isinstance(outcome, _UnitFailure):
            raise RuntimeError(f"remote work unit failed: "
                               f"{outcome.error}")
        return ticket, outcome

    @property
    def pending(self) -> int:
        return self._pending


class SocketWorkerBackend(ExecutionBackend):
    """A lease server remote ``repro worker`` processes execute for.

    The backend owns a listening TCP socket inside the planner (or
    service) process.  Workers connect, say hello, and loop:

    1. ``lease`` — block until a unit is queued; the reply carries the
       unit plus the server store's current blob ids.
    2. ``pull`` — fetch the blobs the worker's local replica lacks
       (content-hash filenames make "missing" a set difference).
    3. execute the unit against the local replica,
    4. ``push`` — upload blobs the unit created that the server lacks,
    5. ``result`` — ship the result value plus a telemetry snapshot.

    Results travel *by value* (like pool futures); the store sync is a
    cache/artifact layer, so a storeless backend still computes
    correct results — re-runs just can't reuse artifacts.

    Worker registration feeds the ``repro_workers_connected`` gauge
    and ``worker-joined``/``worker-left`` events; every lease counts
    ``repro_units_leased_total{backend="workers"}`` and emits
    ``unit-leased``.  A worker dying mid-unit requeues its lease at
    the front of the queue.
    """

    name = "workers"

    def __init__(self, store_dir: str | os.PathLike | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 parallelism: int | None = None, on_event=None):
        self.store_dir = (os.fspath(store_dir)
                          if store_dir is not None else None)
        self._store = (ArtifactStore(self.store_dir)
                       if self.store_dir is not None else None)
        # plans should fan out even before workers connect; the exact
        # worker count never shapes a plan (determinism contract)
        self.parallelism = max(2, parallelism or 0)
        self.on_event = on_event
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: deque = deque()       # (ticket, unit, group)
        self._leased: dict = {}            # conn_id -> (ticket, unit, group)
        self._workers: dict = {}           # conn_id -> worker name
        self._tickets = itertools.count()
        self._closing = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name="repro-workers-accept")
        self._accept_thread.start()

    # -- planner side ---------------------------------------------------

    def group(self) -> UnitGroup:
        return _SocketGroup(self)

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def _enqueue(self, unit: WorkUnit, group: _SocketGroup) -> int:
        with self._work:
            if self._closing:
                raise RuntimeError("backend is closed")
            ticket = next(self._tickets)
            self._queue.append((ticket, unit, group))
            self._work.notify()
        return ticket

    def close(self) -> None:
        with self._work:
            if self._closing:
                return
            self._closing = True
            self._work.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass

    # -- events + gauges --------------------------------------------------

    def _emit(self, event) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event(event)
        except Exception:
            pass  # an observer must never take the lease server down

    # -- server side ------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_connection,
                             args=(conn, addr), daemon=True,
                             name="repro-worker-conn").start()

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        from .events import WorkerJoinedEvent, WorkerLeftEvent
        conn_id = object()
        name = None
        try:
            hello = _recv_frame(conn)
            if (not isinstance(hello, dict)
                    or hello.get("op") != "hello"):
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                _send_frame(conn, {
                    "op": "reject",
                    "error": f"protocol {hello.get('protocol')!r} != "
                             f"server {PROTOCOL_VERSION}"})
                return
            name = str(hello.get("name")
                       or f"{addr[0]}:{addr[1]}")
            with self._lock:
                self._workers[conn_id] = name
                count = len(self._workers)
            TELEMETRY.gauge("repro_workers_connected").set(count)
            self._emit(WorkerJoinedEvent(worker=name, workers=count))
            _send_frame(conn, {"op": "welcome",
                               "store": self._store is not None})
            while True:
                message = _recv_frame(conn)
                if message is None:
                    break  # clean EOF
                op = message.get("op") if isinstance(message, dict) \
                    else None
                if op == "lease":
                    self._handle_lease(conn, conn_id, name)
                elif op == "pull":
                    self._handle_pull(conn, message)
                elif op == "push":
                    self._handle_push(conn, message)
                elif op == "result":
                    self._handle_result(conn, conn_id, message)
                elif op == "goodbye":
                    break
                else:
                    _send_frame(conn, {"op": "error",
                                       "error": f"unknown op {op!r}"})
        except (ConnectionError, OSError, EOFError,
                pickle.UnpicklingError):
            pass  # a dropped worker is handled by the requeue below
        finally:
            try:
                conn.close()
            except OSError:
                pass
            requeued = 0
            with self._work:
                was = self._workers.pop(conn_id, None)
                entry = self._leased.pop(conn_id, None)
                if entry is not None:
                    # the next worker should run the orphaned unit
                    # before anything newer (its planner is blocked)
                    self._queue.appendleft(entry)
                    requeued = 1
                    self._work.notify()
                count = len(self._workers)
            if was is not None:
                TELEMETRY.gauge("repro_workers_connected").set(count)
                self._emit(WorkerLeftEvent(worker=was, workers=count,
                                           requeued=requeued))

    def _handle_lease(self, conn: socket.socket, conn_id,
                      name: str) -> None:
        from .events import UnitLeasedEvent
        with self._work:
            while not self._queue and not self._closing:
                self._work.wait()
            if not self._queue:
                _send_frame(conn, {"op": "shutdown"})
                return
            entry = self._queue.popleft()
            self._leased[conn_id] = entry
        ticket, unit, _ = entry
        _count_lease(self.name)
        self._emit(UnitLeasedEvent(worker=name, unit_kind=unit.kind))
        blobs = self._store.blob_ids() if self._store is not None \
            else None
        _send_frame(conn, {"op": "unit", "lease": ticket, "unit": unit,
                           "blobs": blobs})

    def _handle_pull(self, conn: socket.socket, message: dict) -> None:
        blobs = []
        if self._store is not None:
            for kind, blob_name in message.get("want", ()):
                try:
                    payload = self._store.read_blob(kind, blob_name)
                except ValueError:
                    continue  # refuse bogus ids, serve the rest
                if payload is not None:
                    blobs.append((kind, blob_name, payload))
        _send_frame(conn, {"op": "blobs", "blobs": blobs})

    def _handle_push(self, conn: socket.socket, message: dict) -> None:
        written = 0
        if self._store is not None:
            for kind, blob_name, payload in message.get("blobs", ()):
                try:
                    written += self._store.write_blob(kind, blob_name,
                                                      payload)
                except ValueError:
                    continue
        _send_frame(conn, {"op": "ok", "written": written})

    def _handle_result(self, conn: socket.socket, conn_id,
                       message: dict) -> None:
        with self._work:
            entry = self._leased.pop(conn_id, None)
        TELEMETRY.merge(message.get("telemetry"))
        if entry is not None:
            ticket, _, group = entry
            if message.get("ok", False):
                outcome = message.get("result")
            else:
                outcome = _UnitFailure(str(message.get("error")))
            group._results.put((ticket, outcome))
        _send_frame(conn, {"op": "ok"})


# ----------------------------------------------------------------------
# the worker client (`repro worker --connect host:port`)
# ----------------------------------------------------------------------

def _replica_pull(conn: socket.socket, store: ArtifactStore,
                  server_blobs: list) -> None:
    """Fetch whatever the server has that the replica lacks."""
    want = sorted(set(map(tuple, server_blobs))
                  - set(store.blob_ids()))
    if not want:
        return
    _send_frame(conn, {"op": "pull", "want": want})
    reply = _recv_frame(conn)
    if reply is None or reply.get("op") != "blobs":
        raise ConnectionError("pull got no blobs reply")
    for kind, blob_name, payload in reply.get("blobs", ()):
        store.write_blob(kind, blob_name, payload)


def _replica_push(conn: socket.socket, store: ArtifactStore,
                  server_blobs: list) -> None:
    """Upload whatever the unit created that the server lacks."""
    known = set(map(tuple, server_blobs))
    fresh = [(kind, blob_name) for kind, blob_name in store.blob_ids()
             if (kind, blob_name) not in known]
    if not fresh:
        return
    blobs = []
    for kind, blob_name in fresh:
        payload = store.read_blob(kind, blob_name)
        if payload is not None:
            blobs.append((kind, blob_name, payload))
    _send_frame(conn, {"op": "push", "blobs": blobs})
    reply = _recv_frame(conn)
    if reply is None or reply.get("op") != "ok":
        raise ConnectionError("push got no ack")


def run_worker(connect: str, store_dir: str | os.PathLike | None = None,
               name: str | None = None, max_units: int | None = None,
               announce=None) -> int:
    """The ``repro worker`` loop: lease, sync, execute, push, repeat.

    Connects to a :class:`SocketWorkerBackend` at *connect*
    (``host:port``), executes units until the server says ``shutdown``
    (or the link drops, or *max_units* is reached), and returns how
    many units it completed.  ``store_dir`` roots the local store
    replica; omitted, a temporary replica is created and removed on
    exit.  *announce*, if given, receives one human-readable line per
    lifecycle step (the CLI wires it to stderr).
    """
    host, port = parse_host_port(connect)
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    scratch = None
    if store_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-worker-")
        store_dir = scratch.name

    def say(line: str) -> None:
        if announce is not None:
            announce(line)

    units = 0
    try:
        with socket.create_connection((host, port)) as conn:
            _send_frame(conn, {"op": "hello",
                               "protocol": PROTOCOL_VERSION,
                               "name": worker_name, "pid": os.getpid()})
            welcome = _recv_frame(conn)
            if welcome is None or welcome.get("op") != "welcome":
                error = (welcome or {}).get("error", "no welcome")
                raise ConnectionError(f"server refused worker: {error}")
            env = ExecutionEnv(store_dir)
            server_has_store = bool(welcome.get("store"))
            say(f"worker {worker_name} connected to {host}:{port} "
                f"(replica: {store_dir})")
            while max_units is None or units < max_units:
                _send_frame(conn, {"op": "lease"})
                message = _recv_frame(conn)
                if message is None or message.get("op") == "shutdown":
                    say(f"worker {worker_name} released "
                        f"({units} units)")
                    break
                if message.get("op") != "unit":
                    raise ConnectionError(
                        f"unexpected lease reply "
                        f"{message.get('op')!r}")
                unit: WorkUnit = message["unit"]
                server_blobs = message.get("blobs") or []
                if server_has_store and env.store is not None:
                    _replica_pull(conn, env.store, server_blobs)
                try:
                    with TELEMETRY.timer("repro_worker_unit_seconds"):
                        result = execute_unit(unit, env)
                    ok, error = True, None
                except Exception as exc:  # ship the failure home
                    result, ok = None, False
                    error = f"{type(exc).__name__}: {exc}"
                if server_has_store and env.store is not None:
                    _replica_push(conn, env.store, server_blobs)
                _send_frame(conn, {"op": "result",
                                   "lease": message["lease"],
                                   "ok": ok, "result": result,
                                   "error": error,
                                   "telemetry": TELEMETRY.drain()})
                ack = _recv_frame(conn)
                if ack is None:
                    break
                units += 1
                say(f"worker {worker_name} completed {unit.kind} "
                    f"({units} total)")
            try:
                _send_frame(conn, {"op": "goodbye"})
            except OSError:
                pass
    finally:
        if scratch is not None:
            scratch.cleanup()
    return units


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------

def resolve_backend(spec, jobs: int | None = 1,
                    store_dir: str | os.PathLike | None = None,
                    units: int | None = None
                    ) -> tuple[ExecutionBackend, bool]:
    """A backend for one planner run: ``(backend, planner_owns_it)``.

    *spec* is ``None`` (auto: inline for serial shapes, pool
    otherwise), a backend name, or a live :class:`ExecutionBackend`
    instance.  Auto and named specs build a fresh per-run backend the
    planner must close (``owned=True``); a live instance is shared
    infrastructure (the service's socket backend) and is returned
    unowned.  *units*, when the planner already knows how many units
    it will submit, caps the pool size the way the old per-module
    dispatch loops did (``min(jobs, len(shards))``).
    """
    if isinstance(spec, ExecutionBackend):
        return spec, False
    if spec is not None and spec not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {spec!r}; expected one of "
                         f"{list(BACKEND_NAMES)} or a backend instance")
    jobs = max(1, jobs if jobs and jobs > 0 else (os.cpu_count() or 1))
    name = spec
    if name is None:
        serial = jobs <= 1 or (units is not None and units <= 1)
        name = "inline" if serial else "pool"
    if name == "inline":
        return InlineBackend(store_dir), True
    if name == "pool":
        return PoolBackend(jobs, store_dir=store_dir,
                           max_workers=units), True
    raise ValueError(
        "the workers backend needs a live lease server; pass a "
        "SocketWorkerBackend instance (the CLI's --backend workers and "
        "serve --workers-port construct one)")
