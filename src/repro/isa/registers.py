"""Architectural register definitions for the repro ISA.

The ISA is Alpha-flavoured: 32 integer registers (``r0``-``r31``) and 32
floating-point registers (``f0``-``f31``).  Register ``r31`` and ``f31``
are hardwired to zero, exactly as on the Alpha 21264 that the paper's
workloads were compiled for.  A handful of integer registers carry
software conventions (stack pointer, return address) used by the
workload kernels and the assembler's pseudo-instructions.

Registers are represented as small integers so that table-based
structures (the RAT, the optimizer's CP/RA table) can be indexed
directly:

* integer registers occupy indices ``0 .. 31``
* floating-point registers occupy indices ``32 .. 63``
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Index of the hardwired-zero integer register (``r31``).
ZERO_REG = 31

#: Index of the hardwired-zero floating-point register (``f31``).
FP_ZERO_REG = NUM_INT_REGS + 31

#: Software conventions used by the workload kernels.
RETURN_ADDR_REG = 26  # r26, like the Alpha ``ra``
STACK_POINTER_REG = 30  # r30, like the Alpha ``sp``

_FP_BASE = NUM_INT_REGS


def is_int_reg(index: int) -> bool:
    """Return True if *index* names an integer architectural register."""
    return 0 <= index < NUM_INT_REGS


def is_fp_reg(index: int) -> bool:
    """Return True if *index* names a floating-point architectural register."""
    return _FP_BASE <= index < NUM_ARCH_REGS


def is_zero_reg(index: int) -> bool:
    """Return True if *index* is one of the hardwired-zero registers."""
    return index == ZERO_REG or index == FP_ZERO_REG


def int_reg(number: int) -> int:
    """Return the register index for integer register ``r<number>``."""
    if not 0 <= number < NUM_INT_REGS:
        raise ValueError(f"integer register number out of range: {number}")
    return number


def fp_reg(number: int) -> int:
    """Return the register index for floating-point register ``f<number>``."""
    if not 0 <= number < NUM_FP_REGS:
        raise ValueError(f"fp register number out of range: {number}")
    return _FP_BASE + number


def reg_name(index: int) -> str:
    """Return the assembly name (``r5``, ``f2``) for a register index."""
    if is_int_reg(index):
        return f"r{index}"
    if is_fp_reg(index):
        return f"f{index - _FP_BASE}"
    raise ValueError(f"register index out of range: {index}")


def parse_reg(name: str) -> int:
    """Parse an assembly register name (``r5``, ``f2``) into an index.

    Raises ``ValueError`` for anything that is not a valid register name.
    """
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"not a register name: {name!r}")
    try:
        number = int(name[1:])
    except ValueError:
        raise ValueError(f"not a register name: {name!r}") from None
    if name[0] == "r":
        return int_reg(number)
    return fp_reg(number)
