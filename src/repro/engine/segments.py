"""Intra-workload sharding: segmented trace planning and simulation.

The plain sweep engine (:mod:`repro.engine.pool`) parallelizes only
*across* grid points, so one long workload bounds a sweep's wall-clock
time.  This module decomposes each ``(workload, scale)`` trace into
fixed-instruction-count **segments** that fan out across all workers:

1. **Planning** (:func:`plan_segments`) advances the functional
   emulator through fixed-size :meth:`~repro.functional.emulator.\
Emulator.run_packed` windows, persisting each window as a packed
   segment-trace artifact plus an architectural
   :class:`~repro.functional.emulator.Checkpoint` at every boundary.
   A killed or partial run resumes from the last stored checkpoint
   instead of replaying the prefix; a **manifest** artifact (written
   last) marks the segmentation complete, so re-planning an already
   segmented workload costs zero emulation.
2. **Simulation** (:func:`run_segmented_sweep`) schedules
   ``(config, segment)`` units through the same process pool the flat
   sweep uses — sharded by segment so every machine variant of one
   segment shares a single unpickle — consulting the store for
   per-segment partial stats first.
3. **Reduction** merges each point's per-segment partials with the
   associative :meth:`PipelineStats.merge`, in segment order.

Semantics: each segment starts a **cold** microarchitecture (empty
caches/predictors) and ends with a full pipeline drain, so instruction
and event counters merge exactly while cycle counts carry a per-segment
fill+drain overhead (see README "Segmented simulation").
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from ..functional.emulator import Emulator
from ..uarch.config import MachineConfig
from ..uarch.pipeline import simulate_trace
from ..uarch.stats import PipelineStats
from ..workloads import build_program
from .campaign import SweepPoint
from .events import SegmentEvent
from .pool import PointResult, SweepResult, resolve_jobs
from .store import ArtifactStore
from .telemetry import TELEMETRY

#: Matches ``workloads.build_trace``'s budget for monolithic emulation.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000


@dataclass(frozen=True)
class SegmentPlan:
    """A completed segmentation of one ``(workload, scale)`` trace."""

    workload: str
    scale: int
    segment_insns: int
    lengths: tuple[int, ...]

    @property
    def num_segments(self) -> int:
        return len(self.lengths)

    @property
    def total_instructions(self) -> int:
        return sum(self.lengths)

    def to_manifest(self) -> dict:
        return {"workload": self.workload, "scale": self.scale,
                "segment_insns": self.segment_insns,
                "num_segments": self.num_segments,
                "total_instructions": self.total_instructions,
                "lengths": list(self.lengths)}

    @classmethod
    def from_manifest(cls, manifest: dict) -> "SegmentPlan":
        return cls(workload=manifest["workload"], scale=manifest["scale"],
                   segment_insns=manifest["segment_insns"],
                   lengths=tuple(manifest["lengths"]))


# ----------------------------------------------------------------------
# planning: emulate (or resume) one workload into segment artifacts
# ----------------------------------------------------------------------

def plan_segments(workload: str, scale: int, segment_insns: int,
                  store: ArtifactStore,
                  max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                  ) -> tuple[SegmentPlan, dict[str, int]]:
    """Ensure every segment trace of a workload exists in *store*.

    Returns the plan plus counters describing what the call actually
    did: ``emulated_instructions`` (0 on a fully cached re-run) and
    ``resumed_at`` (the segment index emulation restarted from, i.e.
    how much prefix the checkpoints saved).
    """
    if segment_insns <= 0:
        raise ValueError(f"segment_insns must be > 0, got {segment_insns}")
    counters = {"emulated_instructions": 0, "resumed_at": 0}
    manifest = store.load_manifest(workload, scale, segment_insns)
    if manifest is not None:
        plan = SegmentPlan.from_manifest(manifest)
        if all(store.has_segment_trace(workload, scale, segment_insns, i)
               for i in range(plan.num_segments)):
            return plan, counters
        # Some segment got evicted (store gc); fall through and rebuild.

    # Longest contiguous prefix of segment traces already on disk.
    ready = 0
    while store.has_segment_trace(workload, scale, segment_insns, ready):
        ready += 1
    emulator = Emulator(build_program(workload, scale),
                        max_instructions=max_instructions)
    # Resume from the newest checkpoint at or before the first gap
    # (checkpoint i = architectural state at the start of segment i;
    # index 0 is the reset state, so it is never stored).
    resume = ready
    while resume > 0:
        state = store.load_checkpoint(workload, scale, segment_insns,
                                      resume)
        if state is not None:
            emulator.restore(state)
            break
        resume -= 1
    counters["resumed_at"] = resume
    # Segments before the resume point were stored by a previous run,
    # and only the final segment of a trace can be short — so every
    # kept prefix segment is exactly segment_insns long.
    lengths = [segment_insns] * resume
    index = resume
    while True:
        # Packed emulation window: same boundary semantics as pulling
        # segment_insns entries from iter_trace(), but table-dispatched,
        # and the stored artifact ships the packed columns directly.
        segment = emulator.run_packed(segment_insns)
        if not len(segment):
            break
        store.save_segment_trace(workload, scale, segment_insns, index,
                                 segment)
        counters["emulated_instructions"] += len(segment)
        lengths.append(len(segment))
        index += 1
        if len(segment) < segment_insns:
            break  # a short segment means the program halted inside it
        store.save_checkpoint(workload, scale, segment_insns, index,
                              emulator.checkpoint())
    plan = SegmentPlan(workload=workload, scale=scale,
                       segment_insns=segment_insns, lengths=tuple(lengths))
    store.save_manifest(workload, scale, segment_insns, plan.to_manifest())
    if counters["emulated_instructions"]:
        TELEMETRY.counter("repro_emu_runs_total").inc()
        TELEMETRY.counter("repro_emu_instructions_total").inc(
            counters["emulated_instructions"])
    return plan, counters


# ----------------------------------------------------------------------
# one point, serially (the runner's --segment-insns path)
# ----------------------------------------------------------------------

def simulate_workload_segmented(workload: str, config: MachineConfig,
                                scale: int, segment_insns: int,
                                store: ArtifactStore,
                                max_instructions: int =
                                DEFAULT_MAX_INSTRUCTIONS) -> PipelineStats:
    """Plan + simulate one workload/config pair segment by segment.

    Serial counterpart of :func:`run_segmented_sweep` used by the
    experiment runner; every per-segment artifact goes through *store*
    so later sweeps (or re-runs) reuse the work.
    """
    plan, _ = plan_segments(workload, scale, segment_insns, store,
                            max_instructions)
    partials = []
    for index in range(plan.num_segments):
        stats = store.load_segment_stats(workload, scale, segment_insns,
                                         index, config)
        if stats is None:
            trace = store.load_segment_trace(workload, scale,
                                             segment_insns, index)
            if trace is None:
                raise RuntimeError(
                    f"segment trace {workload}@{scale}#{index} missing "
                    f"from store {store.root} right after planning")
            stats = simulate_trace(trace, config)
            store.save_segment_stats(workload, scale, segment_insns,
                                     index, config, stats)
        partials.append(stats)
    if not partials:
        return PipelineStats()
    return PipelineStats.merge_all(partials)


# ----------------------------------------------------------------------
# worker side (module-level so ProcessPoolExecutor can pickle them)
# ----------------------------------------------------------------------

#: One store binding per worker *process* (set by the pool
#: initializer).  Segment workers never touch whole-workload traces,
#: so they need no :class:`~repro.engine.pool.ExecutionContext` — and
#: the serial path passes an explicit per-call store instead of this
#: global, so two interleaved segmented sweeps in one driver process
#: stay disjoint.
_worker_store: ArtifactStore | None = None


def _init_worker(store_dir: str) -> None:
    global _worker_store
    _worker_store = ArtifactStore(store_dir)


def _observe_wait(submitted_ns: int | None, phase: str) -> None:
    """Record pool-queue wait for a unit stamped by the driver."""
    if submitted_ns is not None:
        wait = max(0, time.monotonic_ns() - submitted_ns) / 1e9
        TELEMETRY.histogram("repro_pool_shard_wait_seconds",
                            phase=phase).observe(wait)


def _plan_task(task: tuple[str, int, int, int],
               store: ArtifactStore | None = None,
               submitted_ns: int | None = None
               ) -> tuple[tuple[str, int, dict, dict], dict | None]:
    """Plan one (workload, scale); returns (payload, telemetry snap).

    On the pool path (``store is None``: the worker's module-global
    store binds) the worker drains its telemetry and ships the
    snapshot home with the payload; the inline path records into the
    driver's registry directly and ships ``None``.
    """
    pooled = store is None
    store = store if store is not None else _worker_store
    _observe_wait(submitted_ns, "plan")
    workload, scale, segment_insns, max_instructions = task
    with TELEMETRY.timer("repro_segments_plan_seconds"):
        plan, counters = plan_segments(workload, scale, segment_insns,
                                       store, max_instructions)
    payload = (workload, scale, plan.to_manifest(), counters)
    return payload, (TELEMETRY.drain() if pooled else None)


def _simulate_shard(shard: tuple[str, int, int, int, list],
                    store: ArtifactStore | None = None,
                    submitted_ns: int | None = None
                    ) -> tuple[list[tuple[int, int, PipelineStats, bool]],
                               dict | None]:
    """Simulate one segment for every config that needs it.

    ``shard`` is ``(workload, scale, segment_insns, seg_index,
    [(point_index, config), ...])``; the segment trace is unpickled at
    most once no matter how many machine variants consume it.  Returns
    ``(results, telemetry snapshot)`` — the snapshot ships only on the
    pool path, like :func:`_plan_task`.
    """
    pooled = store is None
    store = store if store is not None else _worker_store
    _observe_wait(submitted_ns, "simulate")
    workload, scale, segment_insns, seg_index, items = shard
    out = []
    trace = None
    with TELEMETRY.timer("repro_pool_shard_execute_seconds"):
        for point_index, config in items:
            stats = store.load_segment_stats(
                workload, scale, segment_insns, seg_index, config)
            hit = stats is not None
            if stats is None:
                if trace is None:
                    trace = store.load_segment_trace(
                        workload, scale, segment_insns, seg_index)
                    if trace is None:
                        raise RuntimeError(
                            f"segment trace "
                            f"{workload}@{scale}#{seg_index} "
                            f"missing from store {store.root}")
                stats = simulate_trace(trace, config)
                store.save_segment_stats(workload, scale, segment_insns,
                                         seg_index, config, stats)
            out.append((point_index, seg_index, stats, hit))
    return out, (TELEMETRY.drain() if pooled else None)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run_segmented_sweep(points: list[SweepPoint], segment_insns: int,
                        jobs: int | None = 1,
                        store_dir: str | os.PathLike | None = None,
                        progress=None,
                        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                        ) -> SweepResult:
    """Execute a sweep grid with intra-workload segment parallelism.

    Drop-in alternative to :func:`repro.engine.pool.run_sweep` (same
    ``SweepResult`` shape): a single long workload fans out across all
    ``jobs`` workers instead of serializing on one.  Segment artifacts
    (traces, checkpoints, partial stats) live in the store at
    *store_dir* — or a run-scoped temporary store when omitted — so a
    re-run against the same store performs zero emulation and zero
    segment simulations.

    ``progress`` receives one
    :class:`~repro.engine.events.SegmentEvent` after every completed
    planning task (``phase="plan"``) and simulation shard
    (``phase="simulate"``).
    """
    if segment_insns <= 0:
        raise ValueError(f"segment_insns must be > 0, got {segment_insns}")
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    scratch_dir = None
    if store_dir is None:
        scratch_dir = tempfile.mkdtemp(prefix="repro-segments-")
        store_dir = scratch_dir
    store_dir = os.fspath(store_dir)
    try:
        return _run_segmented(points, segment_insns, jobs, store_dir,
                              progress, max_instructions, started)
    finally:
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)


def _dispatch_units(units: list, worker, absorb, jobs: int, store_dir: str,
                    progress, total: int, phase: str) -> None:
    """Run *worker* over *units* inline or on a process pool.

    ``absorb(result) -> (done, message)`` folds each completed unit
    into the caller's state; ``progress`` receives one
    :class:`~repro.engine.events.SegmentEvent` (tagged *phase*) per
    completed unit.  ``jobs == 1`` (or a single unit) uses the same
    worker code inline — against a call-local store, never a module
    global, so interleaved serial sweeps stay disjoint — making
    serial and parallel runs byte-for-byte identical.
    """
    def emit(done: int, message: str) -> None:
        if progress is not None:
            progress(SegmentEvent(message=message, done=done,
                                  total=total, phase=phase))

    if jobs == 1 or len(units) <= 1:
        store = ArtifactStore(store_dir)
        for unit in units:
            payload, _ = worker(unit, store=store)
            done, message = absorb(payload)
            emit(done, message)
    else:
        from .pool import _pool_kwargs
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(units)),
                                   initializer=_init_worker,
                                   initargs=(store_dir,),
                                   **_pool_kwargs())
        try:
            futures = [pool.submit(worker, unit, None,
                                   time.monotonic_ns())
                       for unit in units]
            for future in as_completed(futures):
                payload, telemetry_snap = future.result()
                TELEMETRY.merge(telemetry_snap)
                done, message = absorb(payload)
                emit(done, message)
        finally:
            # a consumer that bails (a cancelled service job raising
            # from its progress callback) stops near the next
            # completed unit: running units finish, queued units are
            # cancelled
            pool.shutdown(wait=True, cancel_futures=True)


def _run_segmented(points: list[SweepPoint], segment_insns: int, jobs: int,
                   store_dir: str, progress, max_instructions: int,
                   started: float) -> SweepResult:
    counters = {"points": len(points), "segment_insns": segment_insns,
                "emulations": 0, "emulated_instructions": 0,
                "segments": 0, "segment_simulations": 0,
                "segment_stats_hits": 0, "simulations": 0}

    # ---- phase 1: plan every distinct (workload, scale) --------------
    pairs = list(dict.fromkeys((p.workload, p.scale) for p in points))
    tasks = [(workload, scale, segment_insns, max_instructions)
             for workload, scale in pairs]
    plans: dict[tuple[str, int], SegmentPlan] = {}

    def _absorb_plan(result) -> tuple[int, str]:
        workload, scale, manifest, plan_counters = result
        plans[(workload, scale)] = SegmentPlan.from_manifest(manifest)
        counters["emulations"] += plan_counters["emulated_instructions"] > 0
        counters["emulated_instructions"] += \
            plan_counters["emulated_instructions"]
        return len(plans), (f"planned {workload}@{scale} "
                            f"({plans[(workload, scale)].num_segments} "
                            f"segments)")

    _dispatch_units(tasks, _plan_task, _absorb_plan, jobs, store_dir,
                    progress, total=len(tasks), phase="plan")

    # ---- phase 2: fan (config x segment) units across workers --------
    shards: dict[tuple[str, int, int], list] = {}
    for index, point in enumerate(points):
        plan = plans[(point.workload, point.scale)]
        for seg_index in range(plan.num_segments):
            shards.setdefault(
                (point.workload, point.scale, seg_index),
                []).append((index, point.config))
    shard_list = [(workload, scale, segment_insns, seg_index, items)
                  for (workload, scale, seg_index), items
                  in shards.items()]
    counters["segments"] = sum(plan.num_segments
                               for plan in plans.values())
    total_units = sum(len(items) for items in shards.values())
    partials: list[dict[int, PipelineStats]] = [{} for _ in points]
    hits_per_point = [0] * len(points)
    done = 0

    def _absorb_shard(shard_out) -> tuple[int, str]:
        nonlocal done
        for point_index, seg_index, stats, hit in shard_out:
            partials[point_index][seg_index] = stats
            counters["segment_stats_hits"] += hit
            counters["segment_simulations"] += not hit
            hits_per_point[point_index] += hit
        done += len(shard_out)
        first_point = points[shard_out[0][0]]
        seg_index = shard_out[0][1]
        return done, (f"{first_point.workload}@{first_point.scale} "
                      f"segment {seg_index} ({len(shard_out)} configs)")

    _dispatch_units(shard_list, _simulate_shard, _absorb_shard, jobs,
                    store_dir, progress, total=total_units,
                    phase="simulate")

    # ---- phase 3: reduce per-segment partials in segment order -------
    counters["simulations"] = counters["segment_simulations"]
    results = []
    for index, point in enumerate(points):
        plan = plans[(point.workload, point.scale)]
        ordered = [partials[index][seg]
                   for seg in range(plan.num_segments)]
        stats = (PipelineStats.merge_all(ordered) if ordered
                 else PipelineStats())
        results.append(PointResult(
            point=point, stats=stats,
            emulated=False,  # planning emulates per workload, not per point
            simulated=hits_per_point[index] < plan.num_segments,
            segments=plan.num_segments,
            segments_from_cache=hits_per_point[index]))
    return SweepResult(results=results, counters=counters,
                       elapsed=time.perf_counter() - started, jobs=jobs)
