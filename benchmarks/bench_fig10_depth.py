"""Regenerates Figure 10: intra-bundle dependence-depth sweep.

Paper reference: SPECint/SPECfp barely move with depth; mediabench
climbs markedly (1.11 -> 1.25 at depth 3); chained memory operations
add nothing further.
"""

from conftest import publish, rows_data

from repro.experiments import depth


def test_fig10_dependence_depth(benchmark, smoke):
    per_suite = 1 if smoke else 2
    rows = benchmark.pedantic(depth.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": per_suite})
    if not smoke:
        media = next(r for r in rows if r.suite == "mediabench")
        # Mediabench must benefit from deeper chaining (the paper's
        # headline Figure 10 result).
        assert media.bars["depth 3"] >= media.bars["depth 0 (default)"]
        for row in rows:
            # Chained memory queries add essentially nothing.
            assert abs(row.bars["depth 3 & 1 mem"]
                       - row.bars["depth 3"]) < 0.05
    publish("fig10_depth", depth.format(rows), smoke,
            data={"rows": rows_data(rows)})
