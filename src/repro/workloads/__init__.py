"""The experimental workload: 22 benchmark kernels (paper Table 1).

SPEC2000 and mediabench binaries are not redistributable, so each
benchmark is represented by a hand-written assembly kernel reproducing
its dominant loop structure (see DESIGN.md for the substitution
rationale and ``common.py`` for shared helpers).
"""

from . import synth
from .common import Workload, lcg_python, lcg_step
from .suites import (ALL_SUITES, ALL_WORKLOADS, SUITES, build_program,
                     build_trace, get_workload, suite_workloads)

__all__ = [
    "Workload", "lcg_python", "lcg_step", "synth",
    "ALL_SUITES", "ALL_WORKLOADS", "SUITES", "build_program",
    "build_trace", "get_workload", "suite_workloads",
]
