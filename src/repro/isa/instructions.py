"""Instruction representation.

An :class:`Instruction` is an immutable record of one static
instruction.  Source operands are a tagged union of :class:`Reg` and
:class:`Imm` so that the assembler, the functional emulator, the rename
stage, and the continuous optimizer all share one operand model.

Layout conventions:

* ALU ops: ``srcs`` holds the (up to two) sources, ``dst`` the
  destination register.
* Loads: ``srcs = (Reg(base),)``, ``disp`` holds the displacement,
  ``dst`` the destination.
* Stores: ``srcs = (Reg(data), Reg(base))``, ``disp`` the displacement.
* Conditional branches: ``srcs = (Reg(cond),)``, ``target`` the target.
* ``jsr``: ``dst`` is the link register, ``target`` the callee.
* ``ret``/``jmp``: ``srcs = (Reg(target_reg),)``.

``target`` starts as a label string and is patched to an instruction
*byte address* by the assembler's second pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .opcodes import Opcode, OpSpec, spec_of
from .registers import reg_name


@dataclass(frozen=True)
class Reg:
    """A register source operand."""

    index: int

    def __str__(self) -> str:
        return reg_name(self.index)


@dataclass(frozen=True)
class Imm:
    """An immediate source operand (64-bit signed)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


Source = Reg | Imm


@dataclass(frozen=True)
class Instruction:
    """One static instruction."""

    opcode: Opcode
    dst: int | None = None
    srcs: tuple[Source, ...] = ()
    target: str | int | None = None
    disp: int = 0
    pc: int = 0  # byte address, filled in by the assembler
    text: str = field(default="", compare=False)

    @property
    def spec(self) -> OpSpec:
        """Static metadata for this instruction's opcode."""
        return spec_of(self.opcode)

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        spec = self.spec
        return spec.is_load or spec.is_store

    @property
    def is_control(self) -> bool:
        """True for any instruction that can change the PC."""
        spec = self.spec
        return spec.is_branch or spec.is_jump

    def with_pc(self, pc: int) -> "Instruction":
        """Return a copy of this instruction placed at byte address *pc*."""
        return replace(self, pc=pc)

    def with_target(self, target: int) -> "Instruction":
        """Return a copy with the control-flow target resolved to *target*."""
        return replace(self, target=target)

    def reg_sources(self) -> tuple[int, ...]:
        """Indices of all register source operands (in operand order)."""
        return tuple(src.index for src in self.srcs if isinstance(src, Reg))

    def __str__(self) -> str:
        if self.text:
            return self.text
        parts = [self.opcode.value]
        operands: list[str] = []
        if self.dst is not None:
            operands.append(reg_name(self.dst))
        operands.extend(str(src) for src in self.srcs)
        if self.target is not None:
            operands.append(str(self.target))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
