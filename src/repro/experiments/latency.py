"""Figure 11: optimizer pipeline-latency sensitivity (Section 6.3).

Speedup over the baseline with 0, 2 (default), and 4 extra rename
stages for the optimizer.  The extra stages lengthen the branch
recovery loop, so performance degrades gracefully; the paper reports
that even at four stages the average speedup stays noteworthy
(1.04-1.10).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import geomean, prewarm_suites, run_workload

STAGE_COUNTS = (0, 2, 4)


@dataclass(frozen=True)
class LatencyRow:
    """One suite's Figure 11 bars keyed by extra-stage count."""

    suite: str
    bars: dict[int, float]


def run(scale: int = 1, workloads_per_suite: int | None = None,
        jobs: int | None = None) -> list[LatencyRow]:
    """Measure Figure 11 per suite."""
    base = default_config()
    lists = prewarm_suites(
        [base] + [base.with_optimizer(opt_stages=s)
                  for s in STAGE_COUNTS],
        scale, jobs, workloads_per_suite)
    rows = []
    for suite in SUITES:
        suite_list = lists[suite]
        bars = {}
        for stages in STAGE_COUNTS:
            config = base.with_optimizer(opt_stages=stages)
            values = []
            for workload in suite_list:
                baseline = run_workload(workload.name, base, scale)
                variant = run_workload(workload.name, config, scale)
                values.append(baseline.cycles / variant.cycles)
            bars[stages] = geomean(values)
        rows.append(LatencyRow(suite=suite, bars=bars))
    return rows


def format(rows: list[LatencyRow]) -> str:
    """Render the Figure 11 bars as text."""
    table_rows = [[row.suite] + [row.bars[s] for s in STAGE_COUNTS]
                  for row in rows]
    return format_table(
        "Figure 11: optimizer latency sensitivity (speedup)",
        ["suite", "delay 0", "delay 2 (default)", "delay 4"],
        table_rows)
