"""Sparse byte-addressable memory model.

Used by the functional emulator as the architectural memory image.
Backed by a dict of byte address -> byte value so that the Alpha-style
address map (text at 4 KB, data at 1 MB, stack near 8 MB) costs nothing
for the untouched gaps.

Loads from never-written addresses return zero, which matches BSS
semantics and keeps the workload kernels simple.
"""

from __future__ import annotations

import struct

from .alu import sign_extend, zero_extend


class Memory:
    """Sparse little-endian memory."""

    def __init__(self, image: dict[int, int] | None = None):
        self._bytes: dict[int, int] = dict(image) if image else {}

    def load(self, addr: int, size: int, signed: bool = True) -> int:
        """Read *size* bytes at *addr*; extend to a signed 64-bit value."""
        if addr < 0:
            raise ValueError(f"negative address: {addr:#x}")
        raw = 0
        for offset in range(size):
            raw |= self._bytes.get(addr + offset, 0) << (offset * 8)
        if signed:
            return sign_extend(raw, size)
        return zero_extend(raw, size)

    def store(self, addr: int, value: int, size: int) -> None:
        """Write the low *size* bytes of *value* at *addr*."""
        if addr < 0:
            raise ValueError(f"negative address: {addr:#x}")
        value &= (1 << (size * 8)) - 1
        for offset in range(size):
            self._bytes[addr + offset] = (value >> (offset * 8)) & 0xFF

    def load_double(self, addr: int) -> float:
        """Read an 8-byte IEEE-754 double at *addr*."""
        bits = self.load(addr, 8, signed=False)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]

    def store_double(self, addr: int, value: float) -> None:
        """Write *value* as an 8-byte IEEE-754 double at *addr*."""
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        self.store(addr, bits, 8)

    def double_to_bits(self, value: float) -> int:
        """Bit pattern of *value* as an unsigned 64-bit integer."""
        return struct.unpack("<Q", struct.pack("<d", value))[0]

    def snapshot(self) -> dict[int, int]:
        """A copy of all written bytes (address -> byte value)."""
        return dict(self._bytes)

    def footprint(self) -> int:
        """Number of distinct bytes ever written."""
        return len(self._bytes)
